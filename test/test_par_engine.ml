(* The parallel (sharded) engine must be an invisible substitute for the
   sequential one: bit-identical simulated times, results, statistics and
   traces. These tests pin that contract at two levels — hand-built
   two-shard machine fixtures that stress the cross-shard ordering edges
   (same-timestamp boundary events, cross-shard ivar wakeups, barrier
   last-arriver continuations), and whole-application runs through the
   harness driver compared field-by-field against sequential runs. *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Stats = Ace_engine.Stats
module Eq = Ace_engine.Event_queue
module Driver = Ace_harness.Driver
module Em3d = Ace_apps.Em3d
module Bh = Ace_apps.Barnes_hut

let check_int = Alcotest.(check int)
let check_bool = Alcotest.(check bool)

(* ---- machine-level fixtures ----------------------------------------- *)

(* Run a fixture on a fresh 4-proc machine under [engine]; [make] receives
   the machine and builds the per-processor program (so fixtures can
   allocate per-run shared state like ivars and barriers). Returns the
   per-processor event logs — each log is only ever appended from its own
   processor's context, so it is shard-private — plus the final time. *)
let run_fixture engine make =
  let n = 4 in
  let m = Machine.create ~engine ~nprocs:n () in
  Machine.set_lookahead m 10.;
  let logs = Array.make n [] in
  let log i tag t = logs.(i) <- (tag, t) :: logs.(i) in
  let program = make m in
  Machine.run m (fun p -> program log p);
  (Array.map List.rev logs, Machine.time m)

let same_on_par ?(engines = [ Machine.Par_engine 2; Machine.Par_engine 4 ])
    name make =
  let reference = run_fixture Machine.Seq_engine make in
  List.iter
    (fun e ->
      let got = run_fixture e make in
      if got <> reference then
        Alcotest.failf "%s: parallel run diverges from sequential" name)
    engines

(* The parallel engine splits into shards at the first barrier release (the
   natural end of every Ace program's setup phase), so each fixture leads
   with one barrier to get out of the sequential warmup. *)
let after_split m body =
  let b = Machine.Barrier.create m ~cost:(fun _ -> 4.) in
  fun log p ->
    Machine.advance p (float_of_int p.Machine.id);
    Machine.Barrier.wait b p;
    body log p

(* Every processor schedules an event on every other processor at the same
   absolute timestamp: three same-timestamp events per destination, some
   crossing the shard boundary. FIFO demands they run in the pushers'
   sequential execution order. *)
let par_ties () =
  same_on_par "same-timestamp boundary events" (fun m ->
      after_split m (fun log p ->
          let me = p.Machine.id in
          Machine.advance p (float_of_int (3 * me));
          for dst = 0 to 3 do
            if dst <> me then
              Machine.schedule ~owner:dst m ~time:100. (fun () ->
                  log dst me 100.)
          done;
          Machine.advance p 50.;
          log me (-1) p.Machine.clock))

(* A chain of cross-shard deliveries landing at one destination, with the
   source side re-scheduling from inside a delivered event (an event's
   pushes, not just a fiber's, must keep their order across the wire). *)
let par_relay () =
  same_on_par "cross-shard relayed events" (fun m ->
      after_split m (fun log p ->
          let me = p.Machine.id in
          if me = 3 then
            (* two generations: 3 -> 0 (cross-shard), whose handler
               immediately re-schedules 0 -> 2 (cross-shard again) at a
               shared timestamp *)
            for k = 0 to 4 do
              let t1 = 30. +. float_of_int k in
              Machine.schedule ~owner:0 m ~time:t1 (fun () ->
                  log 0 (100 + k) t1;
                  Machine.schedule ~owner:2 m ~time:70. (fun () ->
                      log 2 (200 + k) 70.))
            done;
          Machine.advance p 80.;
          log me (-1) p.Machine.clock))

(* Cross-shard ivar wakeup: proc 0 (shard 0) blocks on an ivar filled by a
   delivery scheduled from proc 3 (shard 1). The waiter's resumption is
   itself a cross-shard continuation. *)
let par_ivar () =
  same_on_par "cross-shard ivar wakeup" (fun m ->
      let iv = Ivar.create () in
      after_split m (fun log p ->
          match p.Machine.id with
          | 0 ->
              Machine.advance p 5.;
              let v = Machine.await p iv in
              log 0 v p.Machine.clock
          | 3 ->
              Machine.advance p 20.;
              let t = p.Machine.clock +. 15. in
              Machine.schedule ~owner:0 m ~time:t (fun () ->
                  Ivar.fill iv ~time:t 42);
              Machine.advance p 1.;
              log 3 (-1) p.Machine.clock
          | i ->
              Machine.advance p 2.;
              log i (-1) p.Machine.clock))

(* Barrier rounds with rotating arrival order: each round a different
   processor is the last arriver, so the release continuation (which the
   parallel engine re-threads through the last arriver's order) moves
   across the shard boundary from round to round. *)
let par_barrier () =
  same_on_par "barrier last-arriver rotation" (fun m ->
      let b = Machine.Barrier.create m ~cost:(fun n -> float_of_int (2 * n)) in
      fun log p ->
        let me = p.Machine.id in
        for round = 0 to 4 do
          Machine.advance p (float_of_int (((me + round) * 7) mod 13));
          Machine.Barrier.wait b p;
          log me round p.Machine.clock
        done)

(* Regression: after a skewed barrier, the last arriver keeps running
   inside the releasing event, so its same-timestamp pushes sequentially
   beat the woken fibers' pushes — whose order keys only resolve at the
   window close. All four processors race a delivery onto processor 0 at
   one absolute timestamp right after each release; the service order
   (and with it proc 0's clock) must match the sequential engine's even
   while the woken pushers' ranks are still pending. *)
let par_last_arriver_race () =
  same_on_par "post-barrier same-time contention" (fun m ->
      let b = Machine.Barrier.create m ~cost:(fun _ -> 4.) in
      fun log p ->
        let me = p.Machine.id in
        for round = 1 to 3 do
          Machine.advance p (float_of_int ((7 * (me + round)) mod 13));
          Machine.Barrier.wait b p;
          let t = 200. *. float_of_int round in
          Machine.schedule ~owner:0 m ~time:t (fun () -> log 0 me t)
        done;
        log me (-1) p.Machine.clock)

(* ---- engine selection edges ------------------------------------------ *)

let seq_structure () =
  let m = Machine.create ~nprocs:4 () in
  check_int "seq nshards" 1 (Machine.nshards m);
  check_bool "seq engine" true (Machine.engine m = Machine.Seq_engine);
  check_bool "seq stats is root" true (Machine.stats m == Machine.root_stats m)

let par_clamps_shards () =
  let m = Machine.create ~engine:(Machine.Par_engine 8) ~nprocs:4 () in
  check_int "clamped to nprocs" 4 (Machine.nshards m);
  check_bool "reports clamped engine" true
    (Machine.engine m = Machine.Par_engine 4)

let par_rejects_policy () =
  check_bool "non-FIFO policy refused" true
    (try
       ignore
         (Machine.create ~policy:(Eq.Random 7) ~engine:(Machine.Par_engine 2)
            ~nprocs:4 ());
       false
     with Machine.Par_unsupported _ -> true)

let fallback_reason () =
  check_bool "violation recognized" true
    (Machine.par_fallback_reason (Machine.Par_violation "x")
    = Some "violation: x");
  check_bool "unsupported recognized" true
    (Machine.par_fallback_reason (Machine.Par_unsupported "y")
    = Some "unsupported: y");
  check_bool "other exns pass through" true
    (Machine.par_fallback_reason Exit = None)

(* ---- whole-application bit-identity ---------------------------------- *)

type probe = {
  seconds : float;
  result : float;
  scalars : (string * float) list;
  dims : (string * (int * float) list) list;
}

let check_probe name a b =
  if a.seconds <> b.seconds then
    Alcotest.failf "%s: seconds differ: %.17g <> %.17g" name a.seconds b.seconds;
  if a.result <> b.result then
    Alcotest.failf "%s: results differ: %.17g <> %.17g" name a.result b.result;
  if a.scalars <> b.scalars then
    Alcotest.failf "%s: stat counters differ" name;
  if a.dims <> b.dims then
    Alcotest.failf "%s: dimensioned stats differ" name

let em3d_cfg = { Em3d.default with Em3d.n_nodes = 64; steps = 4 }
let bh_cfg = { Bh.default with Bh.n_bodies = 48; steps = 2 }

let run_probe runner =
  let captured = ref None in
  let out =
    runner ~stats:(fun s ->
        captured := Some (Stats.to_list s, Stats.dims_to_list s))
  in
  match !captured with
  | Some (scalars, dims) ->
      {
        seconds = out.Driver.seconds;
        result = out.Driver.result;
        scalars;
        dims;
      }
  | None -> Alcotest.fail "stats probe not invoked"

let ace_probe ?batch ?engine ?protocol () =
  let cfg = { em3d_cfg with Em3d.protocol } in
  run_probe (fun ~stats ->
      Driver.run_ace ?batch ?engine ~stats ~nprocs:4 (module Em3d) cfg)

let par_ace_em3d () =
  let seq = ace_probe () in
  check_probe "ace em3d par:2" seq (ace_probe ~engine:(Machine.Par_engine 2) ());
  check_probe "ace em3d par:4" seq (ace_probe ~engine:(Machine.Par_engine 4) ())

let par_ace_em3d_protocols () =
  List.iter
    (fun proto ->
      let seq = ace_probe ~protocol:proto () in
      let par =
        ace_probe ~protocol:proto ~engine:(Machine.Par_engine 4) ()
      in
      check_probe ("ace em3d " ^ proto) seq par)
    [ "DYN_UPDATE"; "STATIC_UPDATE" ]

let par_ace_em3d_batched () =
  let seq = ace_probe ~batch:true () in
  check_probe "ace em3d batched" seq
    (ace_probe ~batch:true ~engine:(Machine.Par_engine 4) ())

let par_crl_em3d () =
  let crl_probe ?engine () =
    run_probe (fun ~stats ->
        Driver.run_crl ?engine ~stats ~nprocs:4 (module Em3d) em3d_cfg)
  in
  let seq = crl_probe () in
  check_probe "crl em3d par:2" seq (crl_probe ~engine:(Machine.Par_engine 2) ());
  check_probe "crl em3d par:4" seq (crl_probe ~engine:(Machine.Par_engine 4) ())

let par_ace_bh () =
  let bh_probe ?engine () =
    run_probe (fun ~stats ->
        Driver.run_ace ?engine ~stats ~nprocs:4 (module Bh) bh_cfg)
  in
  let seq = bh_probe () in
  check_probe "ace bh par:4" seq (bh_probe ~engine:(Machine.Par_engine 4) ())

(* Traces must also be replicated byte-for-byte: arc ids, span order, the
   lot. *)
let par_trace_identity () =
  let trace_of engine =
    let path = Filename.temp_file "ace_par_trace" ".json" in
    ignore (Driver.run_ace ?engine ~trace:path ~nprocs:4 (module Em3d) em3d_cfg);
    let ic = open_in_bin path in
    let len = in_channel_length ic in
    let s = really_input_string ic len in
    close_in ic;
    Sys.remove path;
    s
  in
  let seq = trace_of None in
  let par = trace_of (Some (Machine.Par_engine 4)) in
  if seq <> par then Alcotest.fail "trace files differ between engines"

(* ---- transparent sequential fallback --------------------------------- *)

(* An application that switches protocols mid-run: Ace_ChangeProtocol is an
   order-dependent global operation, so the parallel engine refuses it
   after the shards split and the driver transparently re-runs the whole
   program sequentially — same result, same simulated time. *)
module Switch_app = struct
  type config = unit

  let n_spaces = 1

  module Make (D : Ace_region.Dsm_intf.S) = struct
    let run () ctx =
      let me = D.me ctx in
      let n = D.nprocs ctx in
      let h =
        if me = 0 then D.alloc ctx ~space:0 ~len:8
        else begin
          D.barrier ctx ~space:0;
          D.map ctx (D.global_id ctx ~space:0 ~owner:0 ~seq:0)
        end
      in
      if me = 0 then D.barrier ctx ~space:0;
      D.start_write ctx h;
      (D.data ctx h).(me) <- float_of_int (me + 1);
      D.end_write ctx h;
      D.barrier ctx ~space:0;
      (* after the split: the gate fires here under the parallel engine *)
      D.change_protocol ctx ~space:0 "SC";
      D.barrier ctx ~space:0;
      D.start_read ctx h;
      let sum = Array.fold_left ( +. ) 0. (D.data ctx h) in
      D.end_read ctx h;
      D.barrier ctx ~space:0;
      sum *. float_of_int (n + 1)
  end
end

let par_fallback_seq_identical () =
  let run ?engine () =
    run_probe (fun ~stats ->
        Driver.run_ace ?engine ~stats ~nprocs:4 (module Switch_app) ())
  in
  let seq = run () in
  let par = run ~engine:(Machine.Par_engine 4) () in
  check_bool "fallback computed something" true (seq.result > 0.);
  check_probe "fallback run" seq par

(* Gated features silently select the sequential engine (no exception, no
   divergence). *)
let par_gates_resolve_seq () =
  let seq =
    run_probe (fun ~stats ->
        Driver.run_ace ~stats ~nprocs:4 (module Em3d) em3d_cfg)
  in
  let with_crit =
    let cr = Ace_engine.Crit.create ~nprocs:4 () in
    run_probe (fun ~stats ->
        Driver.run_ace ~crit:cr ~engine:(Machine.Par_engine 4) ~stats ~nprocs:4
          (module Em3d) em3d_cfg)
  in
  if seq.seconds <> with_crit.seconds || seq.result <> with_crit.result then
    Alcotest.fail "crit-gated run diverges from sequential"

(* ---- per-shard stats plumbing ---------------------------------------- *)

let stats_merge_roundtrip () =
  let a = Stats.create () in
  let b = Stats.create () in
  Stats.add a "x" 2.;
  Stats.add b "x" 3.;
  Stats.add b "y" 1.;
  let f = Stats.fam "test.par.fam" in
  Stats.add_dim a f 0 5.;
  Stats.add_dim b f 0 7.;
  Stats.add_dim b f 3 1.;
  Stats.merge_into a b;
  check_bool "scalar summed" true (Stats.get a "x" = 5.);
  check_bool "scalar adopted" true (Stats.get a "y" = 1.);
  check_bool "dim summed" true (Stats.get_dim a f 0 = 12.);
  check_bool "dim adopted" true (Stats.get_dim a f 3 = 1.);
  (* merge resets make the source reusable for the next window *)
  Stats.reset b;
  check_bool "source resets clean" true (Stats.get b "x" = 0.)

let () =
  let t name f = Alcotest.test_case name `Quick f in
  Alcotest.run "par_engine"
    [
      ( "fixtures",
        [
          t "same-timestamp boundary events" par_ties;
          t "cross-shard relayed events" par_relay;
          t "cross-shard ivar wakeup" par_ivar;
          t "barrier last-arriver rotation" par_barrier;
          t "post-barrier same-time contention" par_last_arriver_race;
        ] );
      ( "selection",
        [
          t "sequential structure" seq_structure;
          t "shard clamp" par_clamps_shards;
          t "non-FIFO rejected" par_rejects_policy;
          t "fallback recognizer" fallback_reason;
        ] );
      ( "bit-identity",
        [
          t "ace em3d" par_ace_em3d;
          t "ace em3d protocols" par_ace_em3d_protocols;
          t "ace em3d batched" par_ace_em3d_batched;
          t "crl em3d" par_crl_em3d;
          t "ace barnes-hut" par_ace_bh;
          t "trace identity" par_trace_identity;
        ] );
      ( "fallback",
        [
          t "change_protocol falls back" par_fallback_seq_identical;
          t "crit gates to seq" par_gates_resolve_seq;
        ] );
      ("stats", [ t "merge roundtrip" stats_merge_roundtrip ]);
    ]
