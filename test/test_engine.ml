(* Unit and property tests for the discrete-event engine. *)

module Eq = Ace_engine.Event_queue
module Ivar = Ace_engine.Ivar
module Machine = Ace_engine.Machine
module Rng = Ace_engine.Det_rng
module Stats = Ace_engine.Stats

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---- event queue ---- *)

let eq_ordering () =
  let q = Eq.create () in
  let out = ref [] in
  let push t v = Eq.push q ~time:t (fun () -> out := v :: !out) in
  push 3. "c";
  push 1. "a";
  push 2. "b";
  Eq.drain q (fun _ f -> f ());
  Alcotest.(check (list string)) "timestamp order" [ "a"; "b"; "c" ]
    (List.rev !out)

let eq_tie_break () =
  let q = Eq.create () in
  let out = ref [] in
  for i = 0 to 9 do
    Eq.push q ~time:5. (fun () -> out := i :: !out)
  done;
  while Eq.pop_min q do
    Eq.popped_thunk q ()
  done;
  Alcotest.(check (list int)) "insertion order on ties"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !out)

let eq_drain_allows_reentrant_push () =
  (* thunks push new events while draining, as simulation fibers do *)
  let q = Eq.create () in
  let out = ref [] in
  let rec step n t =
    out := (t, n) :: !out;
    if n < 5 then Eq.push q ~time:(t +. 2.) (fun () -> step (n + 1) (t +. 2.))
  in
  Eq.push q ~time:1. (fun () -> step 0 1.);
  Eq.push q ~time:4. (fun () -> out := (4., 100) :: !out);
  Eq.drain q (fun _ f -> f ());
  Alcotest.(check (list (pair (float 0.) int)))
    "interleaved by time"
    [ (1., 0); (3., 1); (4., 100); (5., 2); (7., 3); (9., 4); (11., 5) ]
    (List.rev !out);
  Alcotest.(check bool) "empty after drain" true (Eq.is_empty q)

let eq_rejects_bad_time () =
  Alcotest.check_raises "negative time" (Invalid_argument "Event_queue.push: bad time")
    (fun () -> Eq.push (Eq.create ()) ~time:(-1.) ignore);
  Alcotest.check_raises "nan time" (Invalid_argument "Event_queue.push: bad time")
    (fun () -> Eq.push (Eq.create ()) ~time:Float.nan ignore)

let eq_length_and_peek () =
  let q = Eq.create () in
  check "empty" true (Eq.is_empty q);
  Eq.push q ~time:7. ignore;
  Eq.push q ~time:3. ignore;
  check_int "length" 2 (Eq.length q);
  check "peek" true (Eq.peek_time q = Some 3.)

let eq_heap_property =
  QCheck.Test.make ~name:"event queue pops in sorted order" ~count:200
    QCheck.(list (float_bound_inclusive 1000.))
    (fun times ->
      let q = Eq.create () in
      List.iter (fun t -> Eq.push q ~time:(abs_float t) ignore) times;
      let rec drain last =
        if not (Eq.pop_min q) then true
        else
          let t = Eq.popped_time q in
          t >= last && drain t
      in
      drain neg_infinity)

(* Random interleaved push/pop sequences against a sorted-list reference
   model: every pop must return the pending event with the least
   (time, push-index) — i.e. timestamp order with FIFO tie-break — through
   arbitrary grow/shrink patterns of the 4-ary heap. Times are drawn from a
   tiny grid so ties are common. *)
let eq_model_property =
  QCheck.Test.make ~name:"interleaved push/pop matches sorted-list model"
    ~count:500
    QCheck.(list (option (int_bound 7)))
    (fun ops ->
      let q = Eq.create () in
      let model = ref [] (* sorted (time, k) ascending *) in
      let k = ref 0 in
      let insert tm =
        let entry = (tm, !k) in
        let rec ins = function
          | [] -> [ entry ]
          | e :: rest -> if entry < e then entry :: e :: rest else e :: ins rest
        in
        model := ins !model
      in
      let ok = ref true in
      let popped = ref [] in
      (* pop once and compare (time, push-index) — carried by the thunk —
         against the model's head *)
      let check_pop expected =
        if not (Eq.pop_min q) then ok := false
        else begin
          Eq.popped_thunk q ();
          match !popped with
          | got :: _ ->
              if got <> expected then ok := false;
              if Eq.popped_time q <> fst expected then ok := false
          | [] -> ok := false
        end
      in
      List.iter
        (fun op ->
          match op with
          | Some t ->
              let tm = float_of_int t in
              let idx = !k in
              Eq.push q ~time:tm (fun () -> popped := (tm, idx) :: !popped);
              insert tm;
              incr k
          | None -> (
              match !model with
              | [] -> if Eq.pop_min q then ok := false
              | expected :: rest ->
                  model := rest;
                  check_pop expected))
        ops;
      (* drain the remainder; it must replay the model exactly *)
      List.iter check_pop !model;
      if Eq.pop_min q then ok := false;
      !ok)

(* ---- ivar ---- *)

let ivar_basics () =
  let iv = Ivar.create () in
  check "not filled" false (Ivar.is_filled iv);
  let got = ref None in
  Ivar.on_fill iv (fun ~time v -> got := Some (time, v));
  Ivar.fill iv ~time:4. 42;
  check "waiter ran" true (!got = Some (4., 42));
  check "peek" true (Ivar.peek iv = Some (4., 42));
  (* late waiter runs immediately *)
  let late = ref false in
  Ivar.on_fill iv (fun ~time:_ _ -> late := true);
  check "late waiter" true !late

let ivar_double_fill () =
  let iv = Ivar.create () in
  Ivar.fill iv ~time:0. ();
  Alcotest.check_raises "double fill" (Failure "Ivar.fill: already filled")
    (fun () -> Ivar.fill iv ~time:1. ())

let ivar_waiter_order () =
  let iv = Ivar.create () in
  let out = ref [] in
  for i = 0 to 4 do
    Ivar.on_fill iv (fun ~time:_ () -> out := i :: !out)
  done;
  Ivar.fill iv ~time:0. ();
  Alcotest.(check (list int)) "registration order" [ 0; 1; 2; 3; 4 ]
    (List.rev !out)

(* ---- deterministic rng ---- *)

let rng_deterministic () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    check_int "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done

let rng_bounds =
  QCheck.Test.make ~name:"rng int stays in bounds" ~count:500
    QCheck.(pair small_int (int_range 1 1000))
    (fun (seed, bound) ->
      let r = Rng.create seed in
      let v = Rng.int r bound in
      v >= 0 && v < bound)

let rng_float_range =
  QCheck.Test.make ~name:"rng float in [0,1)" ~count:500 QCheck.small_int
    (fun seed ->
      let r = Rng.create seed in
      let v = Rng.float r in
      v >= 0. && v < 1.)

let rng_shuffle_permutation =
  QCheck.Test.make ~name:"shuffle is a permutation" ~count:100
    QCheck.(pair small_int (list small_int))
    (fun (seed, l) ->
      let a = Array.of_list l in
      Rng.shuffle (Rng.create seed) a;
      List.sort compare (Array.to_list a) = List.sort compare l)

(* ---- machine ---- *)

let machine_advance_and_time () =
  let m = Machine.create ~nprocs:2 () in
  Machine.run m (fun p ->
      Machine.advance p (float_of_int ((10 * p.Machine.id) + 10)));
  check "time is max clock" true (Machine.time m = 20.)

let machine_barrier_sync () =
  let m = Machine.create ~nprocs:4 () in
  let b = Machine.Barrier.create m ~cost:(fun _ -> 5.) in
  let release_times = ref [] in
  Machine.run m (fun p ->
      Machine.advance p (float_of_int (p.Machine.id * 100));
      Machine.Barrier.wait b p;
      release_times := p.Machine.clock :: !release_times);
  (* everyone released at max arrival (300) + cost (5) *)
  check "all equal" true (List.for_all (fun t -> t = 305.) !release_times)

let machine_barrier_reusable () =
  let m = Machine.create ~nprocs:3 () in
  let b = Machine.Barrier.create m ~cost:(fun _ -> 1.) in
  let count = ref 0 in
  Machine.run m (fun p ->
      for _ = 1 to 5 do
        Machine.Barrier.wait b p;
        incr count
      done);
  check_int "all generations" 15 !count

let machine_await_fill_ordering () =
  let m = Machine.create ~nprocs:2 () in
  let iv = Ivar.create () in
  let observed = ref 0. in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then begin
        Machine.advance p 50.;
        Ivar.fill iv ~time:p.Machine.clock 99
      end
      else begin
        let v = Machine.await p iv in
        observed := p.Machine.clock;
        assert (v = 99)
      end);
  check "waiter resumed at fill time" true (!observed = 50.)

let machine_deadlock_detected () =
  let m = Machine.create ~nprocs:1 () in
  let iv : unit Ivar.t = Ivar.create () in
  let raised = ref false in
  (try Machine.run m (fun p -> Machine.await p iv)
   with Failure _ -> raised := true);
  check "deadlock reported" true !raised

let machine_deterministic () =
  let run () =
    let m = Machine.create ~nprocs:8 () in
    let b = Machine.Barrier.create m ~cost:(fun _ -> 3.) in
    let trace = Buffer.create 64 in
    Machine.run m (fun p ->
        let rng = Rng.create p.Machine.id in
        for _ = 1 to 20 do
          Machine.advance p (float_of_int (Rng.int rng 50));
          Machine.Barrier.wait b p;
          if p.Machine.id = 0 then
            Buffer.add_string trace (Printf.sprintf "%.0f;" p.Machine.clock)
        done);
    Buffer.contents trace
  in
  Alcotest.(check string) "bit-identical runs" (run ()) (run ())

let machine_rejects_negative_advance () =
  let m = Machine.create ~nprocs:1 () in
  let raised = ref false in
  (try Machine.run m (fun p -> Machine.advance p (-1.))
   with Invalid_argument _ -> raised := true);
  check "negative advance rejected" true !raised

(* ---- stats ---- *)

let stats_counters () =
  let s = Stats.create () in
  Stats.incr s "x";
  Stats.add s "x" 2.5;
  Stats.incr s "y";
  check "x" true (Stats.get s "x" = 3.5);
  check "missing is zero" true (Stats.get s "z" = 0.);
  check_int "listing" 2 (List.length (Stats.to_list s))

let () =
  Alcotest.run "engine"
    [
      ( "event_queue",
        [
          Alcotest.test_case "ordering" `Quick eq_ordering;
          Alcotest.test_case "tie break" `Quick eq_tie_break;
          Alcotest.test_case "reentrant drain" `Quick eq_drain_allows_reentrant_push;
          Alcotest.test_case "bad time" `Quick eq_rejects_bad_time;
          Alcotest.test_case "length/peek" `Quick eq_length_and_peek;
          QCheck_alcotest.to_alcotest eq_heap_property;
          QCheck_alcotest.to_alcotest eq_model_property;
        ] );
      ( "ivar",
        [
          Alcotest.test_case "basics" `Quick ivar_basics;
          Alcotest.test_case "double fill" `Quick ivar_double_fill;
          Alcotest.test_case "waiter order" `Quick ivar_waiter_order;
        ] );
      ( "det_rng",
        [
          Alcotest.test_case "deterministic" `Quick rng_deterministic;
          QCheck_alcotest.to_alcotest rng_bounds;
          QCheck_alcotest.to_alcotest rng_float_range;
          QCheck_alcotest.to_alcotest rng_shuffle_permutation;
        ] );
      ( "machine",
        [
          Alcotest.test_case "advance/time" `Quick machine_advance_and_time;
          Alcotest.test_case "barrier sync" `Quick machine_barrier_sync;
          Alcotest.test_case "barrier reuse" `Quick machine_barrier_reusable;
          Alcotest.test_case "await ordering" `Quick machine_await_fill_ordering;
          Alcotest.test_case "deadlock" `Quick machine_deadlock_detected;
          Alcotest.test_case "deterministic" `Quick machine_deterministic;
          Alcotest.test_case "negative advance" `Quick
            machine_rejects_negative_advance;
        ] );
      ("stats", [ Alcotest.test_case "counters" `Quick stats_counters ]);
    ]
