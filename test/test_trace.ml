(* Observability tests: histogram bucket edges, dimensioned counters, the
   tracer's JSON (parsed back with ace_obs), trace analyses on synthetic
   events, and the invariant that tracing never changes simulated time. *)

module Stats = Ace_engine.Stats
module Machine = Ace_engine.Machine
module Trace = Ace_engine.Trace
module Driver = Ace_harness.Driver
module Trace_read = Ace_obs.Trace_read
module Analyze = Ace_obs.Analyze

let em3d_cfg = { Ace_apps.Em3d.default with Ace_apps.Em3d.n_nodes = 64; steps = 2 }

let tmp_trace () = Filename.temp_file "ace" ".trace.json"

(* ---- Stats: histograms and families ---- *)

let test_bucket_edges () =
  let h = Stats.hist "test.hist.edges" ~limits:[| 1.; 2.; 4. |] in
  let t = Stats.create () in
  List.iter (Stats.observe t h) [ 1.0; 1.5; 2.0; 4.0; 5.0 ];
  let limits, counts = Stats.hist_counts t h in
  Alcotest.(check (array (float 0.))) "limits" [| 1.; 2.; 4. |] limits;
  (* le semantics: 1.0 -> le=1; 1.5 and 2.0 -> le=2; 4.0 -> le=4;
     5.0 -> overflow *)
  Alcotest.(check (array (float 0.))) "counts" [| 1.; 2.; 1.; 1. |] counts

let test_hist_validation () =
  Alcotest.check_raises "empty limits" (Invalid_argument "Stats.hist: no bucket limits")
    (fun () -> ignore (Stats.hist "test.hist.empty" ~limits:[||]));
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Stats.hist: limits must be strictly increasing")
    (fun () -> ignore (Stats.hist "test.hist.bad" ~limits:[| 2.; 1. |]));
  let a = Stats.hist "test.hist.dup" ~limits:[| 1.; 2. |] in
  let b = Stats.hist "test.hist.dup" ~limits:[| 1.; 2. |] in
  let t = Stats.create () in
  Stats.observe t a 0.5;
  Stats.observe t b 0.5;
  let _, counts = Stats.hist_counts t a in
  Alcotest.(check (float 0.)) "same id on re-registration" 2. counts.(0);
  Alcotest.check_raises "conflicting limits"
    (Invalid_argument "Stats.hist: conflicting limits for test.hist.dup")
    (fun () -> ignore (Stats.hist "test.hist.dup" ~limits:[| 3. |]))

let test_fam () =
  let f = Stats.fam "test.fam" in
  let t = Stats.create () in
  Stats.incr_dim t f 0;
  Stats.incr_dim t f 7;
  Stats.add_dim t f 7 2.;
  Alcotest.(check (float 0.)) "cell 0" 1. (Stats.get_dim t f 0);
  Alcotest.(check (float 0.)) "cell 7" 3. (Stats.get_dim t f 7);
  Alcotest.(check (float 0.)) "untouched" 0. (Stats.get_dim t f 3);
  Alcotest.(check (list (pair int (float 0.))))
    "sparse cells" [ (0, 1.); (7, 3.) ] (Stats.dim_cells t f);
  Alcotest.check_raises "negative index"
    (Invalid_argument "Stats.add_dim: negative index") (fun () ->
      Stats.incr_dim t f (-1))

(* Ids registered after a [t] was created must still work (the arrays grow
   on demand; create only snapshots the sizes known at that point). *)
let test_late_registration () =
  let t = Stats.create () in
  let f = Stats.fam "test.fam.late" in
  let h = Stats.hist "test.hist.late" ~limits:[| 10. |] in
  Stats.incr_dim t f 2;
  Stats.observe t h 3.;
  Alcotest.(check (float 0.)) "late fam" 1. (Stats.get_dim t f 2);
  let _, counts = Stats.hist_counts t h in
  Alcotest.(check (array (float 0.))) "late hist" [| 1.; 0. |] counts

(* ---- Am.send argument validation (the fixed ~src/~dst handling) ---- *)

let test_send_validation () =
  let m = Machine.create ~nprocs:2 () in
  let am = Ace_net.Am.create m Ace_net.Cost_model.cm5_ace in
  Alcotest.check_raises "bad src" (Invalid_argument "Am.send: bad src")
    (fun () -> Ace_net.Am.send am ~now:0. ~src:5 ~dst:0 ~bytes:0 (fun ~time:_ -> ()));
  Alcotest.check_raises "bad dst" (Invalid_argument "Am.send: bad dst")
    (fun () -> Ace_net.Am.send am ~now:0. ~src:0 ~dst:(-1) ~bytes:0 (fun ~time:_ -> ()))

(* ---- per-node / per-link counters agree with the scalars ---- *)

let test_net_dims_sum () =
  let nprocs = 4 in
  let rt = Ace_runtime.Runtime.create ~nprocs () in
  for _ = 1 to Ace_apps.Em3d.n_spaces do
    ignore (Ace_runtime.Runtime.new_space rt "SC")
  done;
  let module A = Ace_apps.Em3d.Make (Ace_runtime.Ops.Api) in
  Ace_runtime.Runtime.run rt (fun ctx -> ignore (A.run em3d_cfg ctx));
  let st = Machine.stats (Ace_runtime.Runtime.machine rt) in
  let total = Stats.get st "net.messages" in
  Alcotest.(check bool) "messages flowed" true (total > 0.);
  let sum f =
    List.fold_left (fun a (_, v) -> a +. v) 0. (Stats.dim_cells st (Stats.fam f))
  in
  Alcotest.(check (float 0.)) "by_src sums to total" total (sum "net.msgs.by_src");
  Alcotest.(check (float 0.)) "by_dst sums to total" total (sum "net.msgs.by_dst");
  Alcotest.(check (float 0.)) "by_link sums to total" total (sum "net.msgs.by_link");
  Alcotest.(check (float 0.))
    "bytes by_src sums to net.bytes" (Stats.get st "net.bytes")
    (sum "net.bytes.by_src");
  let _, counts =
    Stats.hist_counts st
      (Stats.hist "net.latency_cycles"
         ~limits:[| 50.; 100.; 200.; 400.; 800.; 1600.; 3200.; 6400. |])
  in
  Alcotest.(check (float 0.))
    "latency histogram counts every message" total
    (Array.fold_left ( +. ) 0. counts)

(* ---- the trace file: well-formed, per-proc rows, expected span kinds ---- *)

let test_trace_file () =
  let path = tmp_trace () in
  let nprocs = 4 in
  ignore (Driver.run_ace ~trace:path ~nprocs (module Ace_apps.Em3d) em3d_cfg);
  let evs = Trace_read.load path in
  Sys.remove path;
  Alcotest.(check int) "proc rows" nprocs (Trace_read.nprocs evs);
  let real = List.filter (fun e -> not (Trace_read.is_meta e)) evs in
  Alcotest.(check bool) "has events" true (List.length real > 0);
  List.iter
    (fun (e : Trace_read.ev) ->
      Alcotest.(check bool) "known phase" true
        (List.mem e.Trace_read.ph [ 'X'; 'b'; 'e'; 'i' ]);
      Alcotest.(check bool) "tid in range" true
        (e.Trace_read.tid >= 0 && e.Trace_read.tid < nprocs))
    real;
  let count p = List.length (List.filter p real) in
  let span cat (e : Trace_read.ev) = e.Trace_read.ph = 'X' && e.Trace_read.cat = cat in
  Alcotest.(check bool) "protocol-call spans" true (count (span "call") > 0);
  Alcotest.(check bool) "barrier spans" true (count (span "barrier") > 0);
  List.iter
    (fun (e : Trace_read.ev) ->
      if span "barrier" e then
        Alcotest.(check bool) "barrier has gen" true
          (Trace_read.int_arg "gen" e <> None))
    real;
  (* every message arc is a matched b/e pair *)
  let phase c (e : Trace_read.ev) = e.Trace_read.ph = c && e.Trace_read.cat = "msg" in
  let ids c =
    List.filter_map
      (fun e -> if phase c e then Some e.Trace_read.id else None)
      real
    |> List.sort_uniq compare
  in
  Alcotest.(check bool) "has message arcs" true (count (phase 'b') > 0);
  Alcotest.(check int) "arcs pair up" 0 (compare (ids 'b') (ids 'e'));
  Alcotest.(check int) "arc ids unique" (count (phase 'b')) (List.length (ids 'b'))

(* Lock holds show up for applications that lock (TSP's best bound). *)
let test_lock_holds () =
  let path = tmp_trace () in
  ignore (Driver.run_ace ~trace:path ~nprocs:4 (module Ace_apps.Tsp) Ace_apps.Tsp.default);
  let evs = Trace_read.load path in
  Sys.remove path;
  let holds =
    List.filter
      (fun (e : Trace_read.ev) ->
        e.Trace_read.ph = 'X' && e.Trace_read.cat = "lock"
        && e.Trace_read.name = "lock.hold")
      evs
  in
  Alcotest.(check bool) "lock.hold spans" true (List.length holds > 0);
  List.iter
    (fun (e : Trace_read.ev) ->
      Alcotest.(check bool) "hold has rid" true (Trace_read.int_arg "rid" e <> None);
      Alcotest.(check bool) "hold duration >= 0" true (e.Trace_read.dur >= 0.))
    holds

(* The CRL baseline traces too (no spaces: region args only). *)
let test_crl_trace () =
  let path = tmp_trace () in
  ignore (Driver.run_crl ~trace:path ~nprocs:4 (module Ace_apps.Em3d) em3d_cfg);
  let evs = Trace_read.load path in
  Sys.remove path;
  let real = List.filter (fun e -> not (Trace_read.is_meta e)) evs in
  Alcotest.(check bool) "crl call spans" true
    (List.exists
       (fun (e : Trace_read.ev) ->
         e.Trace_read.ph = 'X' && e.Trace_read.cat = "call")
       real);
  Alcotest.(check (list (pair string (float 0.))))
    "no spaces in a crl trace" []
    (List.map (fun (r : Analyze.row) -> (r.Analyze.label, r.Analyze.total))
       (Analyze.hottest_spaces real))

(* ---- determinism: tracing must not move a single simulated second ---- *)

let test_traced_identical () =
  let run trace =
    Driver.run_ace ?trace ~nprocs:4 (module Ace_apps.Em3d) em3d_cfg
  in
  let plain = run None in
  let path = tmp_trace () in
  let traced = run (Some path) in
  Sys.remove path;
  Alcotest.(check bool) "simulated seconds bit-identical" true
    (plain.Driver.seconds = traced.Driver.seconds);
  Alcotest.(check bool) "results bit-identical" true
    (plain.Driver.result = traced.Driver.result)

(* ---- analyses on a hand-built trace with known answers ---- *)

let test_analyze_synthetic () =
  let tr = Trace.create () in
  Trace.span tr ~name:"start_read" ~cat:"call" ~tid:0 ~ts:10. ~dur:5.
    ~args:[ ("space", 0); ("rid", 3) ] ();
  Trace.span tr ~name:"start_read" ~cat:"call" ~tid:1 ~ts:20. ~dur:7.
    ~args:[ ("space", 0); ("rid", 3) ] ();
  Trace.span tr ~name:"end_write" ~cat:"call" ~tid:0 ~ts:40. ~dur:2.
    ~args:[ ("space", 1); ("rid", 4) ] ();
  Trace.span tr ~name:"barrier" ~cat:"barrier" ~tid:0 ~ts:100. ~dur:8.
    ~args:[ ("gen", 0) ] ();
  Trace.span tr ~name:"barrier" ~cat:"barrier" ~tid:1 ~ts:103. ~dur:5.
    ~args:[ ("gen", 0) ] ();
  Trace.arc tr ~name:"msg" ~cat:"msg" ~tid_src:0 ~tid_dst:1 ~ts:50.
    ~ts_end:120. ~args:[ ("src", 0); ("dst", 1); ("bytes", 16) ] ();
  Trace.lock_acquired tr ~tid:1 ~rid:4 ~ts:60.;
  Trace.lock_released tr ~tid:1 ~rid:4 ~ts:75.;
  let path = tmp_trace () in
  Trace.write_file tr ~nprocs:2 path;
  let evs = Trace_read.load path in
  Sys.remove path;
  let real = List.filter (fun e -> not (Trace_read.is_meta e)) evs in

  (match Analyze.call_breakdown real with
  | [ a; b ] ->
      Alcotest.(check string) "hottest call" "start_read" a.Analyze.label;
      Alcotest.(check (float 0.)) "start_read total" 12. a.Analyze.total;
      Alcotest.(check int) "start_read count" 2 a.Analyze.count;
      Alcotest.(check string) "second call" "end_write" b.Analyze.label
  | rows -> Alcotest.failf "expected 2 call rows, got %d" (List.length rows));

  (match Analyze.hottest_regions real with
  | hot :: _ ->
      (* region 4: 2 cyc of end_write + 15 cyc of lock.hold *)
      Alcotest.(check string) "hottest region" "region 4" hot.Analyze.label;
      Alcotest.(check (float 0.)) "region 4 time" 17. hot.Analyze.total
  | [] -> Alcotest.fail "no region rows");

  (match Analyze.barrier_skew real with
  | [ b ] ->
      Alcotest.(check int) "gen" 0 b.Analyze.gen;
      Alcotest.(check int) "arrivals" 2 b.Analyze.arrivals;
      Alcotest.(check (float 0.)) "skew" 3. b.Analyze.skew;
      Alcotest.(check (float 0.)) "span" 8. b.Analyze.span
  | rows -> Alcotest.failf "expected 1 barrier row, got %d" (List.length rows));

  let m = Analyze.messages real in
  Alcotest.(check int) "one message" 1 m.Analyze.messages;
  Alcotest.(check int) "bytes" 16 m.Analyze.bytes;
  Alcotest.(check (float 0.)) "latency" 70. m.Analyze.mean_latency;
  match m.Analyze.links with
  | [ l ] -> Alcotest.(check string) "link" "0->1" l.Analyze.link
  | rows -> Alcotest.failf "expected 1 link row, got %d" (List.length rows)

(* ---- the JSON parser itself ---- *)

let test_json_parser () =
  let open Ace_obs.Json in
  (match parse {| {"a": [1, 2.5, -3e2], "b": "x\ny", "c": true, "d": null} |} with
  | Obj [ ("a", List [ Num 1.; Num 2.5; Num -300. ]); ("b", Str "x\ny");
          ("c", Bool true); ("d", Null) ] -> ()
  | _ -> Alcotest.fail "unexpected parse");
  List.iter
    (fun s ->
      match parse s with
      | exception Parse_error _ -> ()
      | _ -> Alcotest.failf "accepted malformed %S" s)
    [ "{"; "[1,]"; "{\"a\":}"; "12 34"; "\"unterminated"; "nul" ]

let () =
  Alcotest.run "trace"
    [
      ( "stats",
        [
          Alcotest.test_case "bucket edges" `Quick test_bucket_edges;
          Alcotest.test_case "hist validation" `Quick test_hist_validation;
          Alcotest.test_case "families" `Quick test_fam;
          Alcotest.test_case "late registration" `Quick test_late_registration;
          Alcotest.test_case "net dims sum" `Quick test_net_dims_sum;
        ] );
      ( "am",
        [ Alcotest.test_case "send validation" `Quick test_send_validation ] );
      ( "trace",
        [
          Alcotest.test_case "file well-formed" `Quick test_trace_file;
          Alcotest.test_case "lock holds" `Quick test_lock_holds;
          Alcotest.test_case "crl trace" `Quick test_crl_trace;
          Alcotest.test_case "tracing is invisible" `Quick test_traced_identical;
        ] );
      ( "analyze",
        [
          Alcotest.test_case "synthetic trace" `Quick test_analyze_synthetic;
          Alcotest.test_case "json parser" `Quick test_json_parser;
        ] );
    ]
