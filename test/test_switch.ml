(* Regression tests for mid-run Ace_ChangeProtocol hardening:

   - the collective-agreement check: nodes passing different protocol
     names must die with a diagnostic naming the space, both protocol
     names and both nodes (not silently adopt node 0's choice);
   - the strand-flush guarantee under bulk-transfer batching: a
     write-combined update parked by [queue_write_home] must not cross
     the swap barrier unflushed (queued write -> switch -> read must see
     the write, even when the switched space's detach hook is a no-op). *)

module Runtime = Ace_runtime.Runtime
module Ops = Ace_runtime.Ops

let check = Alcotest.(check bool)
let checkf = Alcotest.(check (float 0.))
let contains s sub = Str_find.find s sub >= 0

let make ~nprocs =
  let rt = Runtime.create ~nprocs () in
  Ace_protocols.Proto_lib.register_all rt;
  rt

(* ---- collective-agreement diagnostic ---- *)

let mismatch_reports () =
  let rt = make ~nprocs:2 in
  ignore (Runtime.new_space rt "SC");
  match
    Runtime.run rt (fun ctx ->
        let name = if Ops.me ctx = 0 then "NULL" else "MIGRATORY" in
        Ops.change_protocol ctx ~space:0 name)
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      check "names both protocols" true
        (contains msg "\"NULL\"" && contains msg "\"MIGRATORY\"");
      check "names the space" true (contains msg "space 0");
      check "names the call" true (contains msg "Ace_ChangeProtocol")

let agreement_accepts_and_clears () =
  let rt = make ~nprocs:4 in
  ignore (Runtime.new_space rt "SC");
  (* Two successive collective switches on the same space: the second one
     must start from a cleared agreement slot, not compare against the
     first call's posted name. *)
  Runtime.run rt (fun ctx ->
      Ops.change_protocol ctx ~space:0 "MIGRATORY";
      Ops.change_protocol ctx ~space:0 "SC");
  check "runs to completion" true true

(* ---- strand flush under batching ---- *)

(* Node 1 parks a write-combined update on the PIPELINE space, including a
   combined update+release gated on it, then every node switches a
   *different* space whose detach hook is a no-op (NULL). Without the
   flush in change_protocol, node 1 sits in the swap barrier with a
   non-empty queue: node 0's lock waits on a release that can never land
   (deadlock), and the written value is stranded on node 1. *)
let switch_flushes_parked_writes () =
  let rt = make ~nprocs:2 in
  ignore (Runtime.new_space rt "PIPELINE");
  ignore (Runtime.new_space rt "NULL");
  Ace_net.Am.set_batching (Runtime.am rt) true;
  let seen = ref nan in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:4);
      Ops.barrier ctx ~space:1;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      if me = 1 then begin
        Ops.lock ctx h;
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- 42.;
        Ops.end_write ctx h;
        (* parks the update; the release rides it (unlock_after) *)
        Ops.unlock ctx h
      end;
      Ops.change_protocol ctx ~space:1 "SC";
      if me = 0 then begin
        Ops.lock ctx h;
        Ops.start_read ctx h;
        seen := (Ops.data ctx h).(0);
        Ops.end_read ctx h;
        Ops.unlock ctx h
      end);
  checkf "read after switch sees the queued write" 42. !seen

(* Switching the PIPELINE space itself: the detach hook's barrier must
   publish the parked update (and await it) before the swap, so a plain
   post-switch read under SC sees the value. *)
let detach_publishes_parked_writes () =
  let rt = make ~nprocs:2 in
  ignore (Runtime.new_space rt "PIPELINE");
  Ace_net.Am.set_batching (Runtime.am rt) true;
  let seen = ref nan in
  Runtime.run rt (fun ctx ->
      let me = Ops.me ctx in
      if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:4);
      Ops.barrier ctx ~space:0;
      let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
      if me = 1 then begin
        Ops.start_write ctx h;
        (Ops.data ctx h).(0) <- 7.5;
        Ops.end_write ctx h
      end;
      Ops.change_protocol ctx ~space:0 "SC";
      if me = 0 then begin
        Ops.start_read ctx h;
        seen := (Ops.data ctx h).(0);
        Ops.end_read ctx h
      end);
  checkf "read under the new protocol sees the queued write" 7.5 !seen

let () =
  Alcotest.run "switch"
    [
      ( "change_protocol",
        [
          Alcotest.test_case "mismatch reports" `Quick mismatch_reports;
          Alcotest.test_case "agreement accepts and clears" `Quick
            agreement_accepts_and_clears;
          Alcotest.test_case "switch flushes parked writes" `Quick
            switch_flushes_parked_writes;
          Alcotest.test_case "detach publishes parked writes" `Quick
            detach_publishes_parked_writes;
        ] );
    ]
