(* Critical-path profiler tests: trace/critpath readers on malformed
   input, hand-computed blame and what-if on a tiny fixture DAG, recorder
   round-trips through the ace-critpath-v1 serialization, and the
   acceptance invariants — recording never changes simulated time, path
   blame sums to the simulated duration, and the what-if prediction for a
   halved send overhead lands near an actual re-run under that cost. *)

module Crit = Ace_engine.Crit
module Stats = Ace_engine.Stats
module Driver = Ace_harness.Driver
module Trace_read = Ace_obs.Trace_read
module Critpath = Ace_obs.Critpath
module Cm = Ace_net.Cost_model

let em3d_cfg = { Ace_apps.Em3d.default with Ace_apps.Em3d.n_nodes = 64; steps = 2 }
let nprocs = 4

let tmp_file contents =
  let path = Filename.temp_file "ace" ".json" in
  let oc = open_out path in
  output_string oc contents;
  close_out oc;
  path

let check_rejects name load path =
  (match load path with
  | (_ : 'a) -> Alcotest.failf "%s: expected an exception" name
  | exception (Failure _ | Ace_obs.Json.Parse_error _) -> ()
  | exception Sys_error _ -> ());
  Sys.remove path

(* ---- readers on malformed input ---- *)

let test_trace_read_malformed () =
  (match Trace_read.load "/nonexistent/ace.trace.json" with
  | (_ : Trace_read.ev list) -> Alcotest.fail "missing file: expected Sys_error"
  | exception Sys_error _ -> ());
  check_rejects "empty file" Trace_read.load (tmp_file "");
  check_rejects "truncated JSON" Trace_read.load
    (tmp_file "{\"traceEvents\": [{\"name\": \"x\"");
  check_rejects "garbage" Trace_read.load (tmp_file "not json at all");
  check_rejects "wrong top level" Trace_read.load (tmp_file "[1, 2, 3]");
  check_rejects "no traceEvents" Trace_read.load (tmp_file "{\"foo\": 1}")

let test_trace_read_tolerant_events () =
  (* Event objects with missing fields parse to defaults, not crashes. *)
  let path = tmp_file "{\"traceEvents\": [{}, {\"ph\": \"X\", \"tid\": 3}]}" in
  let evs = Trace_read.load path in
  Sys.remove path;
  Alcotest.(check int) "events" 2 (List.length evs);
  Alcotest.(check int) "nprocs from max tid" 4 (Trace_read.nprocs evs)

let test_critpath_load_malformed () =
  (match Critpath.load "/nonexistent/ace.critpath.json" with
  | (_ : Critpath.dag) -> Alcotest.fail "missing file: expected Sys_error"
  | exception Sys_error _ -> ());
  check_rejects "empty file" Critpath.load (tmp_file "");
  check_rejects "garbage" Critpath.load (tmp_file "][");
  check_rejects "wrong schema" Critpath.load
    (tmp_file "{\"schema\": \"ace-bench-v2\", \"nodes\": []}");
  check_rejects "not an object" Critpath.load (tmp_file "42");
  check_rejects "bad node row" Critpath.load
    (tmp_file
       "{\"schema\": \"ace-critpath-v1\", \"nprocs\": 1, \"end_time\": 0,\n\
        \ \"kinds\": [\"root\"], \"heads\": [-1], \"nodes\": [[0, 0]], \"bd\": []}");
  (* a node whose pred points forward violates topological order *)
  check_rejects "forward pred" Critpath.load
    (tmp_file
       "{\"schema\": \"ace-critpath-v1\", \"nprocs\": 1, \"end_time\": 1,\n\
        \ \"kinds\": [\"root\"], \"heads\": [0],\n\
        \ \"nodes\": [[1, -1, 0, 0, -1, 0, 0], [-1, -1, 0, 0, -1, 1, 1]],\n\
        \ \"bd\": []}")

(* ---- hand-built fixture: a 3-step chain across two procs ----

   node 0: root                                   time 0    cost 0
   node 1: app   on P0            pred 0          time 100  cost 100
   node 2: msg   P0 -> P1         pred 1          time 150  cost 50
   node 3: app   on P1 (space 0)  pred 2          time 250  cost 100

   The critical path is 3 -> 2 -> 1 -> 0 and its blame must sum to the
   250-cycle duration; halving msg latency must predict 200 cycles. *)

let fixture =
  "{\"schema\": \"ace-critpath-v1\", \"nprocs\": 2, \"end_time\": 250,\n\
   \ \"kinds\": [\"root\", \"app\", \"msg\"],\n\
   \ \"heads\": [1, 3],\n\
   \ \"nodes\": [[-1, -1, 0, -1, -1, 0, 0],\n\
   \            [0, -1, 1, 0, -1, 100, 100],\n\
   \            [1, -1, 2, 0, 1, 150, 50],\n\
   \            [2, -1, 1, 1, 0, 250, 100]],\n\
   \ \"bd\": []}"

let test_fixture_path_and_blame () =
  let dag = Critpath.of_string fixture in
  Alcotest.(check int) "nodes" 4 (Critpath.n_nodes dag);
  Alcotest.(check int) "terminal" 3 (Critpath.terminal dag);
  Alcotest.(check (list int)) "path" [ 3; 2; 1; 0 ] (Critpath.critical_path dag);
  let bp = Critpath.blamed_path dag in
  Alcotest.(check (float 1e-9)) "blame = duration" 250. (Critpath.total_blame bp);
  let by_kind = Critpath.blame_by_kind dag bp in
  Alcotest.(check (float 1e-9)) "app blame" 200. (List.assoc "app" by_kind);
  Alcotest.(check (float 1e-9)) "msg blame" 50. (List.assoc "msg" by_kind);
  let by_link = Critpath.blame_by_link dag bp in
  Alcotest.(check (float 1e-9)) "link 0->1" 50. (List.assoc (0, 1) by_link);
  let by_node = Critpath.blame_by_node dag bp in
  (* messages are blamed to their destination proc *)
  Alcotest.(check (float 1e-9)) "P0 blame" 100. (List.assoc 0 by_node);
  Alcotest.(check (float 1e-9)) "P1 blame" 150. (List.assoc 1 by_node)

let test_fixture_whatif () =
  let dag = Critpath.of_string fixture in
  let pred_of spec =
    match Critpath.parse_whatif spec with
    | Ok w ->
        let _, predicted, _ = Critpath.predict dag [ w ] in
        predicted
    | Error msg -> Alcotest.failf "parse_whatif %s: %s" spec msg
  in
  Alcotest.(check (float 1e-9)) "halve msg" 225. (pred_of "op=msg:0.5");
  Alcotest.(check (float 1e-9)) "drop msg" 200. (pred_of "op=msg:0");
  Alcotest.(check (float 1e-9)) "halve link 0->1" 225. (pred_of "link=0->1:0.5");
  Alcotest.(check (float 1e-9)) "halve other link" 250. (pred_of "link=1->0:0.5");
  Alcotest.(check (float 1e-9)) "halve any link" 225. (pred_of "link=*:0.5");
  Alcotest.(check (float 1e-9)) "scale up msg" 300. (pred_of "op=msg:2");
  (match Critpath.parse_whatif "op=msg" with
  | Ok _ -> Alcotest.fail "missing factor should not parse"
  | Error _ -> ());
  (match Critpath.parse_whatif "bogus=1:0.5" with
  | Ok _ -> Alcotest.fail "unknown target should not parse"
  | Error _ -> ())

let test_fixture_segments () =
  let dag = Critpath.of_string fixture in
  let bp = Critpath.blamed_path dag in
  let segs = Critpath.segments dag bp in
  let total = List.fold_left (fun a s -> a +. s.Critpath.seg_cycles) 0. segs in
  Alcotest.(check (float 1e-9)) "segments cover the path" 250. total;
  (match Critpath.top_segments dag bp ~k:1 with
  | [ s ] ->
      Alcotest.(check string) "heaviest kind" "app" s.Critpath.seg_kind;
      Alcotest.(check (float 1e-9)) "heaviest cycles" 100. s.Critpath.seg_cycles
  | l -> Alcotest.failf "top_segments k:1 returned %d" (List.length l))

(* ---- recorder round-trip through the serialization ---- *)

let run_em3d ?crit ?cost ?stats () =
  Driver.run_ace ?crit ?cost ?stats ~nprocs (module Ace_apps.Em3d) em3d_cfg

let test_roundtrip () =
  let c = Crit.create ~nprocs () in
  let _ = run_em3d ~crit:c () in
  let live = Critpath.of_crit c in
  let path = Filename.temp_file "ace" ".critpath.json" in
  Crit.write_file c path;
  let loaded = Critpath.load path in
  Sys.remove path;
  Alcotest.(check int) "nodes" (Critpath.n_nodes live) (Critpath.n_nodes loaded);
  Alcotest.(check int) "nprocs" live.Critpath.nprocs loaded.Critpath.nprocs;
  Alcotest.(check (float 0.)) "end_time" live.Critpath.end_time
    loaded.Critpath.end_time;
  Alcotest.(check (array string)) "kinds" live.Critpath.kinds loaded.Critpath.kinds;
  Alcotest.(check (array int)) "pred" live.Critpath.pred loaded.Critpath.pred;
  Alcotest.(check (array int)) "pred2" live.Critpath.pred2 loaded.Critpath.pred2;
  Alcotest.(check (array int)) "kind" live.Critpath.kind loaded.Critpath.kind;
  Alcotest.(check (array int)) "a" live.Critpath.a loaded.Critpath.a;
  Alcotest.(check (array int)) "b" live.Critpath.b loaded.Critpath.b;
  Alcotest.(check (array (float 0.))) "time" live.Critpath.time
    loaded.Critpath.time;
  Alcotest.(check (array (float 0.))) "cost" live.Critpath.cost
    loaded.Critpath.cost;
  Alcotest.(check (array int)) "heads" live.Critpath.heads loaded.Critpath.heads;
  Alcotest.(check int) "bd length" (Array.length live.Critpath.bd)
    (Array.length loaded.Critpath.bd);
  Array.iteri
    (fun i rows ->
      Array.iteri
        (fun j (k, sp, cyc) ->
          let k', sp', cyc' = loaded.Critpath.bd.(i).(j) in
          Alcotest.(check (pair (pair int int) (float 0.)))
            (Printf.sprintf "bd %d.%d" i j)
            ((k, sp), cyc)
            ((k', sp'), cyc'))
        rows)
    live.Critpath.bd;
  (* and the loaded dag analyzes identically *)
  let bp = Critpath.blamed_path live and bp' = Critpath.blamed_path loaded in
  Alcotest.(check (float 0.)) "blame" (Critpath.total_blame bp)
    (Critpath.total_blame bp')

(* ---- acceptance invariants on a real run ---- *)

let test_bit_identical_and_blame_total () =
  let off = run_em3d () in
  let c = Crit.create ~nprocs () in
  let on_ = run_em3d ~crit:c () in
  Alcotest.(check (float 0.)) "recording is bit-identical" off.Driver.seconds
    on_.Driver.seconds;
  Alcotest.(check (float 0.)) "same result" off.Driver.result on_.Driver.result;
  let dag = Critpath.of_crit c in
  let bp = Critpath.blamed_path dag in
  let blame_s = Critpath.total_blame bp /. Cm.cm5_ace.Cm.cycles_per_sec in
  Alcotest.(check (float 1e-9)) "path blame = simulated time" on_.Driver.seconds
    blame_s

let test_whatif_vs_rerun () =
  let c = Crit.create ~nprocs () in
  let _ = run_em3d ~crit:c () in
  let dag = Critpath.of_crit c in
  let _, pred_end, _ =
    Critpath.predict dag [ { Critpath.target = Critpath.Op "send_ovh"; factor = 0.5 } ]
  in
  let pred_s = pred_end /. Cm.cm5_ace.Cm.cycles_per_sec in
  let half =
    { Cm.cm5_ace with Cm.am_send_overhead = Cm.cm5_ace.Cm.am_send_overhead /. 2. }
  in
  let actual = run_em3d ~cost:half () in
  let err =
    abs_float (pred_s -. actual.Driver.seconds) /. actual.Driver.seconds
  in
  if err > 0.10 then
    Alcotest.failf
      "what-if send_ovh:0.5 predicted %.6fs, actual re-run %.6fs (%.1f%% off)"
      pred_s actual.Driver.seconds (100. *. err)

let test_blame_space_stats () =
  let c = Crit.create ~nprocs () in
  let cells = ref [] and other = ref 0. in
  let stats t =
    cells := Stats.dim_cells t (Stats.fam "coh.blame.by_space");
    other := Stats.get t "coh.blame.other"
  in
  let r = run_em3d ~crit:c ~stats () in
  let total =
    List.fold_left (fun a (_, v) -> a +. v) !other !cells
  in
  Alcotest.(check bool) "per-space blame populated" true (!cells <> []);
  let total_s = total /. Cm.cm5_ace.Cm.cycles_per_sec in
  Alcotest.(check (float 1e-9)) "blame cells sum to simulated time"
    r.Driver.seconds total_s

let () =
  Alcotest.run "critpath"
    [
      ( "readers",
        [
          Alcotest.test_case "trace_read malformed" `Quick
            test_trace_read_malformed;
          Alcotest.test_case "trace_read tolerant" `Quick
            test_trace_read_tolerant_events;
          Alcotest.test_case "critpath malformed" `Quick
            test_critpath_load_malformed;
        ] );
      ( "fixture",
        [
          Alcotest.test_case "path and blame" `Quick test_fixture_path_and_blame;
          Alcotest.test_case "what-if" `Quick test_fixture_whatif;
          Alcotest.test_case "segments" `Quick test_fixture_segments;
        ] );
      ( "recorder",
        [
          Alcotest.test_case "serialization round-trip" `Quick test_roundtrip;
          Alcotest.test_case "bit-identical, blame total" `Quick
            test_bit_identical_and_blame_total;
          Alcotest.test_case "what-if vs re-run" `Quick test_whatif_vs_rerun;
          Alcotest.test_case "per-space blame stats" `Quick
            test_blame_space_stats;
        ] );
    ]
