(* Tests for the fault-injection layer, the reliable transport, and the
   simulator bugfixes that rode along with them (deadlock report,
   new_space validation, event-queue closure retention). *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Stats = Ace_engine.Stats
module Event_queue = Ace_engine.Event_queue
module Cost_model = Ace_net.Cost_model
module Am = Ace_net.Am
module Faults = Ace_net.Faults
module Reliable = Ace_net.Reliable
module Driver = Ace_harness.Driver

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let contains msg needle = Str_find.find msg needle >= 0

(* ---- spec validation ---- *)

let spec_validates () =
  let rejects f = match f () with
    | (_ : Faults.spec) -> false
    | exception Invalid_argument _ -> true
  in
  check "drop = 1 rejected" true (rejects (fun () -> Faults.spec ~drop:1.0 ()));
  check "negative drop rejected" true
    (rejects (fun () -> Faults.spec ~drop:(-0.1) ()));
  check "dup > 1 rejected" true (rejects (fun () -> Faults.spec ~dup:1.5 ()));
  check "negative jitter rejected" true
    (rejects (fun () -> Faults.spec ~jitter:(-1.) ()));
  check "all-zero spec disabled" false (Faults.enabled (Faults.spec ()));
  check "any knob enables" true (Faults.enabled (Faults.spec ~drop:0.01 ()))

(* ---- Am accounting: logical sends vs physical deliveries ---- *)

let rig ?(nprocs = 2) () =
  let m = Machine.create ~nprocs () in
  let am = Am.create m Cost_model.cm5_ace in
  (m, am)

let faultless_tallies_agree () =
  let m, am = rig () in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        for _ = 1 to 5 do
          Am.send_from am p ~dst:1 ~bytes:16 (fun ~time:_ -> ())
        done);
  let st = Machine.stats m in
  checki "logical messages" 5 (Am.messages am);
  check "net.messages agrees" true (Stats.get st "net.messages" = 5.);
  checki "logical bytes" 80 (Am.bytes_sent am);
  check "net.bytes agrees" true (Stats.get st "net.bytes" = 80.)

let faulted_tallies_balance () =
  (* Raw Am (no reliable layer): physical deliveries must equal logical
     sends minus drops plus the extra duplicated copies. *)
  let m, am = rig () in
  Am.set_faults am (Some (Faults.create ~drop:0.3 ~dup:0.3 ~seed:1 ()));
  let delivered = ref 0 in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        for _ = 1 to 200 do
          Am.send_from am p ~dst:1 ~bytes:16 (fun ~time:_ -> incr delivered)
        done);
  let st = Machine.stats m in
  let logical = float_of_int (Am.messages am) in
  let dropped = Stats.get st "net.fault.dropped" in
  let duplicated = Stats.get st "net.fault.duplicated" in
  check "some drops at 30%" true (dropped > 0.);
  check "some duplicates at 30%" true (duplicated > 0.);
  check "physical = logical - dropped + duplicated" true
    (Stats.get st "net.messages" = logical -. dropped +. duplicated);
  checki "handlers ran once per physical copy" (int_of_float (Stats.get st "net.messages"))
    !delivered

(* ---- reliable transport ---- *)

let drop_then_retransmit_then_ack () =
  (* The first transmission is dropped; the link heals before the timer
     fires, so exactly one retransmission repairs the loss. *)
  let m, am = rig () in
  let f = Faults.create ~seed:2 () in
  Faults.set_drop f 1.0;
  Am.set_faults am (Some f);
  let r = Reliable.create ~rto:1000. am in
  let delivered = ref 0 in
  Machine.schedule m ~time:50. (fun () -> Faults.set_drop f 0.);
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        Reliable.send r ~now:0. ~src:0 ~dst:1 ~bytes:16 (fun ~time:_ ->
            incr delivered));
  let st = Machine.stats m in
  checki "delivered exactly once" 1 !delivered;
  check "one timeout" true (Stats.get st "net.timeouts" = 1.);
  check "one retransmit" true (Stats.get st "net.retransmits" = 1.);
  check "per-link family counted" true
    (Stats.get_dim st (Stats.fam "net.retransmits.by_link") 1 = 1.);
  check "acked" true (Stats.get st "net.acks" = 1.);
  checki "nothing left in flight" 0 (Reliable.pending r)

let duplicate_suppressed () =
  let m, am = rig () in
  let f = Faults.create ~seed:3 () in
  Faults.set_dup f 1.0;
  Am.set_faults am (Some f);
  let r = Reliable.create am in
  let delivered = ref 0 in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        Reliable.send r ~now:0. ~src:0 ~dst:1 ~bytes:16 (fun ~time:_ ->
            incr delivered));
  let st = Machine.stats m in
  checki "handler ran once" 1 !delivered;
  check "second copy suppressed" true (Stats.get st "net.dup_suppressed" = 1.);
  check "both copies ACKed" true (Stats.get st "net.acks" = 2.);
  checki "nothing left in flight" 0 (Reliable.pending r)

let backoff_schedule () =
  (* Permanent blackout: rto 100, backoff 2, max_retries 4. Timeouts fire
     at 100, 300, 700, 1500 (each retransmitting) and at 3100 (giving up),
     so the run ends at exactly t = 3100 with the message still pending. *)
  let m, am = rig () in
  let f = Faults.create ~seed:4 () in
  Faults.set_drop f 1.0;
  Am.set_faults am (Some f);
  let r = Reliable.create ~rto:100. ~backoff:2. ~max_retries:4 am in
  let delivered = ref 0 in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        Reliable.send r ~now:0. ~src:0 ~dst:1 ~bytes:16 (fun ~time:_ ->
            incr delivered));
  let st = Machine.stats m in
  checki "never delivered" 0 !delivered;
  check "4 retransmits" true (Stats.get st "net.retransmits" = 4.);
  check "5 timeouts" true (Stats.get st "net.timeouts" = 5.);
  check "1 giveup" true (Stats.get st "net.giveups" = 1.);
  check "last timer at 3100" true (Machine.time m = 3100.);
  checki "message abandoned in flight" 1 (Reliable.pending r)

let in_order_under_reordering () =
  (* Heavy jitter plus duplication reorders raw deliveries; the reorder
     buffer must still release handlers in send order, exactly once. *)
  let m, am = rig () in
  let f = Faults.create ~seed:5 () in
  Faults.set_jitter f 20000.;
  Faults.set_dup f 0.4;
  Am.set_faults am (Some f);
  let r = Reliable.create am in
  let order = ref [] in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        for i = 0 to 9 do
          Reliable.send r ~now:0. ~src:0 ~dst:1 ~bytes:16 (fun ~time:_ ->
              order := i :: !order)
        done);
  Alcotest.(check (list int))
    "send order preserved"
    [ 0; 1; 2; 3; 4; 5; 6; 7; 8; 9 ]
    (List.rev !order);
  checki "nothing left in flight" 0 (Reliable.pending r)

(* ---- end-to-end determinism and transparency ---- *)

let em3d_cfg = { Ace_apps.Em3d.default with Ace_apps.Em3d.n_nodes = 64; steps = 2 }

let same_seed_same_run () =
  let run () =
    let retrans = ref nan in
    let o =
      Driver.run_ace
        ~faults:(Faults.spec ~drop:0.05 ~seed:42 ())
        ~stats:(fun s -> retrans := Stats.get s "net.retransmits")
        ~nprocs:4
        (module Ace_apps.Em3d)
        em3d_cfg
    in
    (o.Driver.seconds, o.Driver.result, !retrans)
  in
  let s1, r1, x1 = run () in
  let s2, r2, x2 = run () in
  check "losses actually injected" true (x1 > 0.);
  check "simulated seconds reproduce" true (s1 = s2);
  check "results reproduce" true (r1 = r2);
  check "retransmit counts reproduce" true (x1 = x2)

let faults_do_not_change_results () =
  let run faults =
    (Driver.run_ace ?faults ~nprocs:4 (module Ace_apps.Em3d) em3d_cfg)
      .Driver.result
  in
  check "same checksum on a lossy network" true
    (run None = run (Some (Faults.spec ~drop:0.05 ~seed:42 ())))

(* ---- deadlock report ---- *)

let deadlock_names_blocked_procs () =
  let m = Machine.create ~nprocs:2 () in
  let iv : unit Ivar.t = Ivar.create () in
  match Machine.run m (fun p -> if p.Machine.id = 0 then Machine.await p iv)
  with
  | () -> Alcotest.fail "expected a deadlock failure"
  | exception Failure msg ->
      check "says deadlock" true (contains msg "deadlock");
      check "names P0 and its clock" true (contains msg "P0@");
      check "does not accuse the finished P1" false (contains msg "P1@")

(* ---- Ops.new_space mismatch diagnostics ---- *)

let new_space_mismatch_reports () =
  let rt = Ace_runtime.Runtime.create ~nprocs:1 () in
  ignore (Ace_runtime.Runtime.new_space rt "SC");
  match
    Ace_runtime.Runtime.run rt (fun ctx ->
        ignore (Ace_runtime.Ops.new_space ctx "COUNTER"))
  with
  | () -> Alcotest.fail "expected Invalid_argument"
  | exception Invalid_argument msg ->
      check "names the requested protocol" true
        (contains msg "requests protocol \"COUNTER\"");
      check "names the bound protocol" true (contains msg "bound to \"SC\"")

(* ---- event queue releases the last popped closure ---- *)

(* Keep the closure's only strong root inside a non-inlined helper so the
   caller's frame holds no hidden reference. *)
let[@inline never] plant q (w : float array Weak.t) =
  let payload = Array.make 4096 0. in
  Weak.set w 0 (Some payload);
  Event_queue.push q ~time:0. (fun () -> ignore (Array.length payload))

let drain_releases_last_thunk () =
  let q = Event_queue.create () in
  let w : float array Weak.t = Weak.create 1 in
  plant q w;
  Event_queue.drain q (fun _ thunk -> thunk ());
  Gc.full_major ();
  check "closure graph collected after drain" true (Weak.get w 0 = None)

let () =
  Alcotest.run "faults"
    [
      ( "faults",
        [
          Alcotest.test_case "spec validation" `Quick spec_validates;
          Alcotest.test_case "faultless tallies agree" `Quick
            faultless_tallies_agree;
          Alcotest.test_case "faulted tallies balance" `Quick
            faulted_tallies_balance;
        ] );
      ( "reliable",
        [
          Alcotest.test_case "drop, retransmit, ack" `Quick
            drop_then_retransmit_then_ack;
          Alcotest.test_case "duplicate suppressed" `Quick duplicate_suppressed;
          Alcotest.test_case "backoff schedule" `Quick backoff_schedule;
          Alcotest.test_case "in-order under reordering" `Quick
            in_order_under_reordering;
        ] );
      ( "end-to-end",
        [
          Alcotest.test_case "same seed, same run" `Quick same_seed_same_run;
          Alcotest.test_case "faults do not change results" `Quick
            faults_do_not_change_results;
        ] );
      ( "diagnostics",
        [
          Alcotest.test_case "deadlock names blocked procs" `Quick
            deadlock_names_blocked_procs;
          Alcotest.test_case "new_space mismatch reports" `Quick
            new_space_mismatch_reports;
          Alcotest.test_case "drain releases last thunk" `Quick
            drain_releases_last_thunk;
        ] );
    ]
