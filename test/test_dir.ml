(* Compact sharer-set (Dir) tests: differential QCheck properties against
   the old bool-array representation, a visit-order regression pinning the
   iteration order the simulator's schedules depend on, and the directory
   memory sublinearity assertion behind the scaling experiment. *)

module Dir = Ace_region.Dir
module Store = Ace_region.Store

(* ---- reference model: the representation Dir replaced ---- *)

type reference = { rnprocs : int; flags : bool array }

let ref_create nprocs = { rnprocs = nprocs; flags = Array.make nprocs false }
let ref_add r n = r.flags.(n) <- true
let ref_remove r n = r.flags.(n) <- false
let ref_mem r n = r.flags.(n)
let ref_clear r = Array.fill r.flags 0 r.rnprocs false
let ref_count r = Array.fold_left (fun a b -> if b then a + 1 else a) 0 r.flags

let ref_iter r ~except f =
  for n = 0 to r.rnprocs - 1 do
    if r.flags.(n) && n <> except then f n
  done

let collect iter =
  let acc = ref [] in
  iter (fun n -> acc := n :: !acc);
  List.rev !acc

(* ---- differential property ---- *)

type op = Add of int | Remove of int | Clear | Iter of int

(* Node ids are drawn from a small window scaled to nprocs so sequences
   regularly revisit the same ids (exercising no-op adds and removes) yet
   still cross the small->bitset boundary when the window exceeds the
   inline capacity. *)
let op_gen nprocs =
  QCheck.Gen.(
    frequency
      [
        (6, map (fun n -> Add (n mod nprocs)) (int_bound (nprocs - 1)));
        (3, map (fun n -> Remove (n mod nprocs)) (int_bound (nprocs - 1)));
        (1, return Clear);
        (2, map (fun n -> Iter (n mod nprocs)) (int_bound (nprocs - 1)));
      ])

let ops_arb =
  let gen =
    QCheck.Gen.(
      int_range 2 200 >>= fun nprocs ->
      list_size (int_bound 60) (op_gen nprocs) >|= fun ops -> (nprocs, ops))
  in
  let print (nprocs, ops) =
    Printf.sprintf "nprocs=%d [%s]" nprocs
      (String.concat "; "
         (List.map
            (function
              | Add n -> Printf.sprintf "add %d" n
              | Remove n -> Printf.sprintf "remove %d" n
              | Clear -> "clear"
              | Iter e -> Printf.sprintf "iter ~except:%d" e)
            ops))
  in
  QCheck.make ~print gen

let dir_matches_bool_array =
  QCheck.Test.make ~name:"Dir = bool array under random op sequences"
    ~count:500 ops_arb (fun (nprocs, ops) ->
      let d = Dir.create ~nprocs and r = ref_create nprocs in
      List.iter
        (fun op ->
          (match op with
          | Add n ->
              Dir.add d n;
              ref_add r n
          | Remove n ->
              Dir.remove d n;
              ref_remove r n
          | Clear ->
              Dir.clear d;
              ref_clear r
          | Iter except ->
              let got = collect (fun f -> Dir.iter d ~except f) in
              let want = collect (fun f -> ref_iter r ~except f) in
              if got <> want then QCheck.Test.fail_report "iter order differs");
          if Dir.count d <> ref_count r then
            QCheck.Test.fail_report "count differs";
          for n = 0 to nprocs - 1 do
            if Dir.mem d n <> ref_mem r n then
              QCheck.Test.fail_report "mem differs"
          done)
        ops;
      true)

(* The invalidation walk removes already-visited nodes from inside the
   callback; the remaining visit sequence must be unaffected, in both
   representation modes. *)
let iter_robust_to_self_removal =
  QCheck.Test.make ~name:"iter tolerates callback removing visited nodes"
    ~count:300
    QCheck.(pair (int_range 2 200) (list_of_size (Gen.int_bound 30) small_nat))
    (fun (nprocs, nodes) ->
      let d = Dir.create ~nprocs and r = ref_create nprocs in
      List.iter
        (fun n ->
          let n = n mod nprocs in
          Dir.add d n;
          ref_add r n)
        nodes;
      let want = collect (fun f -> ref_iter r ~except:(-1) f) in
      let got = ref [] in
      Dir.iter d ~except:(-1) (fun n ->
          got := n :: !got;
          Dir.remove d n);
      List.rev !got = want && Dir.count d = 0)

(* ---- visit-order regression at the paper's machine size ---- *)

(* Pin the exact ascending order for a mixed population at nprocs=32, in
   small mode, across the overflow, and via Store.iter_sharers — the order
   every simulated invalidation/update fan-out follows. *)
let visit_order_nprocs32 () =
  let d = Dir.create ~nprocs:32 in
  List.iter (Dir.add d) [ 17; 3; 29; 3; 0; 11 ];
  Alcotest.(check (list int))
    "small mode ascending" [ 0; 3; 11; 17; 29 ]
    (collect (fun f -> Dir.iter d ~except:(-1) f));
  Alcotest.(check (list int))
    "except skips without reordering" [ 0; 3; 17; 29 ]
    (collect (fun f -> Dir.iter d ~except:11 f));
  List.iter (Dir.add d) [ 31; 5; 23 ];
  (* 8 ids > small_cap: now in bitset mode *)
  Alcotest.(check bool) "overflowed" false (Dir.is_small d);
  Alcotest.(check (list int))
    "bitset mode ascending" [ 0; 3; 5; 11; 17; 23; 29; 31 ]
    (collect (fun f -> Dir.iter d ~except:(-1) f));
  let store = Store.create ~nprocs:32 () in
  let meta = Store.alloc store ~home:7 ~len:4 ~space:0 in
  List.iter (Dir.add meta.Store.dir.Store.sharers) [ 19; 2; 30 ];
  Alcotest.(check (list int))
    "iter_sharers ascending, home included" [ 2; 7; 19; 30 ]
    (collect (fun f -> Store.iter_sharers meta ~except:(-1) f));
  Alcotest.(check (list int))
    "iter_sharers ~except" [ 2; 19; 30 ]
    (collect (fun f -> Store.iter_sharers meta ~except:7 f))

(* ---- directory memory sublinearity ---- *)

(* A sparsely-shared population (every region mapped everywhere, cached by
   a handful of nodes — the EM3D shape) must cost per-region directory
   memory far below one word per node, and growing far slower than the
   machine: the whole point of the compact representation. *)
let sublinear_directory_memory () =
  let words_per_region nprocs =
    let store = Store.create ~nprocs () in
    let regions = 64 in
    for i = 0 to regions - 1 do
      let meta = Store.alloc store ~home:(i mod nprocs) ~len:8 ~space:0 in
      (* every node maps it... *)
      for node = 0 to nprocs - 1 do
        ignore (Store.map_note meta ~node)
      done;
      (* ...but only three neighbours ever cache or share it *)
      for k = 1 to 3 do
        let node = (meta.Store.home + k) mod nprocs in
        ignore (Store.ensure_copy_c meta ~node);
        Dir.add meta.Store.dir.Store.sharers node
      done
    done;
    float_of_int (Store.dir_words store) /. float_of_int regions
  in
  let w32 = words_per_region 32 and w1024 = words_per_region 1024 in
  (* At 1024 nodes the old bool array + eager copy records cost >= 2048
     words per region; the compact form must stay two orders below. *)
  Alcotest.(check bool)
    (Printf.sprintf "1024-node sparsely-shared region is compact (%.1f words)"
       w1024)
    true (w1024 < 64.);
  (* 32x the machine must cost well under 2x the directory memory. *)
  Alcotest.(check bool)
    (Printf.sprintf "sublinear growth 32->1024 (%.1f -> %.1f words/region)" w32
       w1024)
    true (w1024 < 2. *. w32)

let () =
  Alcotest.run "dir"
    [
      ( "differential",
        [
          QCheck_alcotest.to_alcotest dir_matches_bool_array;
          QCheck_alcotest.to_alcotest iter_robust_to_self_removal;
        ] );
      ( "regression",
        [ Alcotest.test_case "visit order @32" `Quick visit_order_nprocs32 ] );
      ( "memory",
        [
          Alcotest.test_case "sublinear directory memory" `Quick
            sublinear_directory_memory;
        ] );
    ]
