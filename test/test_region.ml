(* Tests for the region store and the coherence building blocks, including
   a property test that random properly-synchronized programs running under
   the invalidation legs compute exactly what a sequential execution does. *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Rng = Ace_engine.Det_rng
module Store = Ace_region.Store
module Dir = Ace_region.Dir
module Blocks = Ace_region.Blocks
module Am = Ace_net.Am
module Cost_model = Ace_net.Cost_model

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

type world = {
  m : Machine.t;
  am : Am.t;
  net : Ace_net.Reliable.t;
  store : Store.t;
  barrier : Machine.Barrier.b;
}

let make_world ~nprocs =
  let m = Machine.create ~nprocs () in
  let am = Am.create m Cost_model.cm5_ace in
  {
    m;
    am;
    net = Ace_net.Reliable.create am;
    store = Store.create ~nprocs ();
    barrier = Machine.Barrier.create m ~cost:(fun _ -> 10.);
  }

let run w f =
  Machine.run w.m (fun p -> f (Blocks.make_ctx w.net w.store p) p)

let bar w p = Machine.Barrier.wait w.barrier p

(* ---- store ---- *)

let store_alloc_get () =
  let s = Store.create ~nprocs:4 () in
  let meta = Store.alloc s ~home:2 ~len:8 ~space:0 in
  check_int "rid" 0 meta.Store.rid;
  check_int "home" 2 meta.Store.home;
  check_int "count" 1 (Store.count s);
  check_int "bytes" 64 (Store.bytes meta);
  check "home copy aliases master" true
    (match Store.copy_of meta ~node:2 with
    | Some c -> c.Store.cdata == meta.Store.master
    | None -> false);
  Store.check_invariants meta

let store_bad_args () =
  let s = Store.create ~nprocs:2 () in
  Alcotest.check_raises "bad home" (Invalid_argument "Store.alloc: bad home")
    (fun () -> ignore (Store.alloc s ~home:5 ~len:1 ~space:0));
  Alcotest.check_raises "bad len" (Invalid_argument "Store.alloc: bad length")
    (fun () -> ignore (Store.alloc s ~home:0 ~len:0 ~space:0));
  Alcotest.check_raises "bad rid" (Invalid_argument "Store.get: bad rid")
    (fun () -> ignore (Store.get s 0))

let store_sharers () =
  let s = Store.create ~nprocs:4 () in
  let meta = Store.alloc s ~home:0 ~len:1 ~space:0 in
  Dir.add meta.Store.dir.Store.sharers 2;
  Alcotest.(check (list int)) "sharers" [ 0; 2 ] (Store.sharers meta ~except:3);
  Alcotest.(check (list int)) "except" [ 2 ] (Store.sharers meta ~except:0)

(* ---- basic coherence legs ---- *)

let fetch_shared_moves_data () =
  let w = make_world ~nprocs:2 in
  let meta = Store.alloc w.store ~home:0 ~len:2 ~space:0 in
  run w (fun ctx p ->
      if p.Machine.id = 0 then begin
        meta.Store.master.(0) <- 3.25;
        meta.Store.master.(1) <- -1.;
        bar w p
      end
      else begin
        bar w p;
        Blocks.fetch_shared ctx meta;
        let c = Option.get (Store.copy_of meta ~node:1) in
        assert (c.Store.cdata.(0) = 3.25 && c.Store.cdata.(1) = -1.);
        assert (c.Store.cstate = Store.Shared)
      end);
  Store.check_invariants meta;
  check "node 1 registered" true (Dir.mem meta.Store.dir.Store.sharers 1)

let fetch_exclusive_invalidates () =
  let w = make_world ~nprocs:3 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      match p.Machine.id with
      | 1 ->
          Blocks.fetch_shared ctx meta;
          bar w p;
          bar w p;
          (* after node 2 wrote, our copy must be invalid *)
          let c = Option.get (Store.copy_of meta ~node:1) in
          assert (c.Store.cstate = Store.Invalid);
          Blocks.fetch_shared ctx meta;
          assert ((Option.get (Store.copy_of meta ~node:1)).Store.cdata.(0) = 7.)
      | 2 ->
          bar w p;
          Blocks.fetch_exclusive ctx meta;
          (Option.get (Store.copy_of meta ~node:2)).Store.cdata.(0) <- 7.;
          bar w p
      | _ ->
          bar w p;
          bar w p);
  Store.check_invariants meta;
  (* node 1's refetch recalled node 2's ownership; the written value is in
     the master *)
  check "master holds written value" true (meta.Store.master.(0) = 7.)

let recall_from_owner () =
  (* a reader after a remote writer sees the written data via recall *)
  let w = make_world ~nprocs:3 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      match p.Machine.id with
      | 1 ->
          Blocks.fetch_exclusive ctx meta;
          (Option.get (Store.copy_of meta ~node:1)).Store.cdata.(0) <- 11.;
          bar w p;
          bar w p
      | 2 ->
          bar w p;
          Blocks.fetch_shared ctx meta;
          assert ((Option.get (Store.copy_of meta ~node:2)).Store.cdata.(0) = 11.);
          bar w p
      | _ ->
          bar w p;
          bar w p);
  Store.check_invariants meta;
  check "owner downgraded" true (meta.Store.dir.Store.owner = -1);
  check "master refreshed" true (meta.Store.master.(0) = 11.)

let writeback_and_flush () =
  let w = make_world ~nprocs:2 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      if p.Machine.id = 1 then begin
        Blocks.fetch_exclusive ctx meta;
        (Option.get (Store.copy_of meta ~node:1)).Store.cdata.(0) <- 5.;
        Blocks.flush ctx meta;
        assert (meta.Store.master.(0) = 5.);
        assert ((Option.get (Store.copy_of meta ~node:1)).Store.cstate = Store.Invalid);
        assert (not (Dir.mem meta.Store.dir.Store.sharers 1))
      end);
  Store.check_invariants meta

let push_update_refreshes_sharers () =
  let w = make_world ~nprocs:3 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      match p.Machine.id with
      | 2 ->
          Blocks.fetch_shared ctx meta;
          bar w p;
          bar w p;
          (* sharer copy refreshed without any action of ours *)
          assert ((Option.get (Store.copy_of meta ~node:2)).Store.cdata.(0) = 9.)
      | 1 ->
          bar w p;
          Blocks.fetch_shared ctx meta;
          (Option.get (Store.copy_of meta ~node:1)).Store.cdata.(0) <- 9.;
          Machine.await p (Blocks.push_update ctx meta);
          (* push fills when forwarded; give deliveries a barrier to land *)
          bar w p
      | _ ->
          bar w p;
          bar w p);
  check "master updated" true (meta.Store.master.(0) = 9.)

let push_to_explicit_consumers () =
  let w = make_world ~nprocs:4 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      match p.Machine.id with
      | 3 ->
          ignore (Store.ensure_copy meta ~node:3);
          bar w p;
          bar w p;
          assert ((Option.get (Store.copy_of meta ~node:3)).Store.cdata.(0) = 2.5)
      | 1 ->
          ignore (Store.ensure_copy meta ~node:1);
          bar w p;
          (Option.get (Store.copy_of meta ~node:1)).Store.cdata.(0) <- 2.5;
          Machine.await p (Blocks.push_to ctx meta ~dsts:[ 3 ]);
          bar w p
      | _ ->
          bar w p;
          bar w p);
  check "master included" true (meta.Store.master.(0) = 2.5)

(* ---- access atomicity (deferral) ---- *)

let invalidation_deferred_during_read () =
  (* node 1 holds an active read; node 2's exclusive fetch must not
     complete until node 1 ends the read *)
  let w = make_world ~nprocs:3 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  let writer_done = ref 0. and reader_end = ref 0. in
  run w (fun ctx p ->
      match p.Machine.id with
      | 1 ->
          Blocks.fetch_shared ctx meta;
          Blocks.begin_access ctx meta ~write:false;
          bar w p;
          Machine.advance p 10_000.;
          reader_end := p.Machine.clock;
          Blocks.end_access ctx meta ~write:false
      | 2 ->
          bar w p;
          Blocks.fetch_exclusive ctx meta;
          writer_done := p.Machine.clock
      | _ -> bar w p);
  check "write waited for reader" true (!writer_done > !reader_end)

let rmw_is_atomic_under_contention () =
  let w = make_world ~nprocs:8 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  run w (fun ctx p ->
      for _ = 1 to 10 do
        Blocks.rmw_acquire ctx meta;
        let c = Option.get (Store.copy_of meta ~node:p.Machine.id) in
        c.Store.cdata.(0) <- c.Store.cdata.(0) +. 1.;
        Machine.await p (Blocks.rmw_release ctx meta)
      done);
  check "all increments" true (meta.Store.master.(0) = 80.)

let fetch_add_unique_values () =
  let w = make_world ~nprocs:8 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  let seen = Hashtbl.create 64 in
  run w (fun ctx p ->
      for _ = 1 to 10 do
        let v =
          if p.Machine.id = meta.Store.home then begin
            (* home: in-place RMW on the aliased master under the
               directory-transaction bracket *)
            Blocks.home_rmw_begin ctx meta;
            let v = meta.Store.master.(0) in
            meta.Store.master.(0) <- v +. 1.;
            Blocks.home_rmw_end ctx meta;
            v
          end
          else begin
            Blocks.fetch_add ctx meta ~delta:1.;
            (Option.get (Store.copy_of meta ~node:p.Machine.id)).Store.cdata.(0)
          end
        in
        assert (not (Hashtbl.mem seen v));
        Hashtbl.add seen v ()
      done);
  check_int "80 unique tickets" 80 (Hashtbl.length seen);
  check "final count" true (meta.Store.master.(0) = 80.)

let locks_mutual_exclusion () =
  let w = make_world ~nprocs:8 in
  let meta = Store.alloc w.store ~home:3 ~len:1 ~space:0 in
  let inside = ref 0 and max_inside = ref 0 and total = ref 0 in
  run w (fun ctx p ->
      for _ = 1 to 5 do
        Blocks.home_lock ctx meta;
        incr inside;
        if !inside > !max_inside then max_inside := !inside;
        incr total;
        Machine.advance p 100.;
        decr inside;
        Blocks.home_unlock ctx meta
      done);
  check_int "never concurrent" 1 !max_inside;
  check_int "all sections ran" 40 !total

let lock_fetch_carries_data () =
  let w = make_world ~nprocs:2 in
  let meta = Store.alloc w.store ~home:0 ~len:1 ~space:0 in
  meta.Store.master.(0) <- 42.;
  run w (fun ctx p ->
      if p.Machine.id = 1 then begin
        Blocks.lock_fetch ctx meta;
        assert ((Option.get (Store.copy_of meta ~node:1)).Store.cdata.(0) = 42.);
        Blocks.home_unlock ctx meta
      end);
  check "done" true true

(* ---- property: coherence = sequential semantics ---- *)

(* A random program: [rounds] phases; in each phase every region is written
   by exactly one (randomly chosen) node, read by several, with a barrier
   between phases. Under the invalidation legs the values observed must
   match a sequential execution of the same schedule. *)
let coherence_matches_reference =
  QCheck.Test.make ~name:"synchronized programs match sequential execution"
    ~count:25
    QCheck.(pair (int_range 1 1000) (pair (int_range 2 6) (int_range 1 4)))
    (fun (seed, (nprocs, nregions)) ->
      let rounds = 4 in
      let w = make_world ~nprocs in
      let metas =
        Array.init nregions (fun i ->
            Store.alloc w.store ~home:(i mod nprocs) ~len:1 ~space:0)
      in
      (* schedule: writer.(round).(region), readers derived from seed *)
      let rng = Rng.create seed in
      let writer =
        Array.init rounds (fun _ -> Array.init nregions (fun _ -> Rng.int rng nprocs))
      in
      (* reference values: v(r, round) = writer*1000 + round *)
      let expected = Array.make nregions 0. in
      for round = 0 to rounds - 1 do
        for r = 0 to nregions - 1 do
          expected.(r) <- float_of_int ((writer.(round).(r) * 1000) + round)
        done
      done;
      let failures = ref 0 in
      run w (fun ctx p ->
          let me = p.Machine.id in
          for round = 0 to rounds - 1 do
            for r = 0 to nregions - 1 do
              if writer.(round).(r) = me then begin
                Blocks.fetch_exclusive ctx metas.(r);
                Blocks.begin_access ctx metas.(r) ~write:true;
                (Option.get (Store.copy_of metas.(r) ~node:me)).Store.cdata.(0) <-
                  float_of_int ((me * 1000) + round);
                Blocks.end_access ctx metas.(r) ~write:true
              end
            done;
            bar w p;
            (* every node reads every region and checks the phase value *)
            for r = 0 to nregions - 1 do
              Blocks.fetch_shared ctx metas.(r);
              Blocks.begin_access ctx metas.(r) ~write:false;
              let v = (Option.get (Store.copy_of metas.(r) ~node:me)).Store.cdata.(0) in
              Blocks.end_access ctx metas.(r) ~write:false;
              if v <> float_of_int ((writer.(round).(r) * 1000) + round) then
                incr failures
            done;
            bar w p
          done);
      Array.iter Store.check_invariants metas;
      !failures = 0)

let () =
  Alcotest.run "region"
    [
      ( "store",
        [
          Alcotest.test_case "alloc/get" `Quick store_alloc_get;
          Alcotest.test_case "bad args" `Quick store_bad_args;
          Alcotest.test_case "sharers" `Quick store_sharers;
        ] );
      ( "blocks",
        [
          Alcotest.test_case "fetch_shared" `Quick fetch_shared_moves_data;
          Alcotest.test_case "fetch_exclusive" `Quick fetch_exclusive_invalidates;
          Alcotest.test_case "recall" `Quick recall_from_owner;
          Alcotest.test_case "writeback/flush" `Quick writeback_and_flush;
          Alcotest.test_case "push_update" `Quick push_update_refreshes_sharers;
          Alcotest.test_case "push_to" `Quick push_to_explicit_consumers;
        ] );
      ( "atomicity",
        [
          Alcotest.test_case "deferred invalidation" `Quick
            invalidation_deferred_during_read;
          Alcotest.test_case "rmw atomic" `Quick rmw_is_atomic_under_contention;
          Alcotest.test_case "fetch_add unique" `Quick fetch_add_unique_values;
          Alcotest.test_case "lock mutex" `Quick locks_mutual_exclusion;
          Alcotest.test_case "lock_fetch data" `Quick lock_fetch_carries_data;
        ] );
      ( "properties",
        [ QCheck_alcotest.to_alcotest coherence_matches_reference ] );
    ]
