(* Tests for the cost model and the Active Messages layer. *)

module Machine = Ace_engine.Machine
module Ivar = Ace_engine.Ivar
module Cost_model = Ace_net.Cost_model
module Am = Ace_net.Am

let check = Alcotest.(check bool)

let transit_monotone =
  QCheck.Test.make ~name:"transit grows with size" ~count:200
    QCheck.(pair (int_range 0 10000) (int_range 0 10000))
    (fun (a, b) ->
      let small = min a b and big = max a b in
      Cost_model.transit Cost_model.cm5_ace ~bytes:small
      <= Cost_model.transit Cost_model.cm5_ace ~bytes:big)

let barrier_cost_grows () =
  let c = Cost_model.cm5_ace in
  check "log growth" true
    (Cost_model.barrier_cost c 32 > Cost_model.barrier_cost c 2)

let profiles_differ () =
  check "CRL maps cost more" true
    Cost_model.(cm5_crl.map_hit > cm5_ace.map_hit);
  check "Ace dispatches cost more" true
    Cost_model.(cm5_ace.dispatch > cm5_crl.dispatch);
  check "CRL misses cost more" true
    Cost_model.(cm5_crl.miss_overhead > cm5_ace.miss_overhead)

let am_delivery_time () =
  let m = Machine.create ~nprocs:2 () in
  let am = Am.create m Cost_model.cm5_ace in
  let delivered = ref nan in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        Am.send_from am p ~dst:1 ~bytes:100 (fun ~time -> delivered := time));
  let c = Cost_model.cm5_ace in
  let expected =
    c.Cost_model.am_send_overhead
    +. Cost_model.transit c ~bytes:100
    +. c.Cost_model.am_recv_overhead
  in
  Alcotest.(check (float 1e-9)) "arrival time" expected !delivered

let am_rpc_roundtrip () =
  let m = Machine.create ~nprocs:2 () in
  let am = Am.create m Cost_model.cm5_ace in
  let got = ref 0 in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        got :=
          Am.rpc am p ~dst:1 ~bytes:16 (fun reply ~time ->
              Am.send am ~now:time ~src:1 ~dst:0 ~bytes:16 (fun ~time ->
                  Ivar.fill reply ~time 1234)));
  Alcotest.(check int) "reply value" 1234 !got;
  Alcotest.(check int) "two messages" 2 (Am.messages am)

let am_counts_bytes () =
  let m = Machine.create ~nprocs:2 () in
  let am = Am.create m Cost_model.cm5_ace in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then begin
        Am.send_from am p ~dst:1 ~bytes:64 (fun ~time:_ -> ());
        Am.send_from am p ~dst:1 ~bytes:36 (fun ~time:_ -> ())
      end);
  Alcotest.(check int) "bytes" 100 (Am.bytes_sent am)

let am_same_size_fifo () =
  (* equal-size messages between the same endpoints deliver in send order *)
  let m = Machine.create ~nprocs:2 () in
  let am = Am.create m Cost_model.cm5_ace in
  let out = ref [] in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        for i = 1 to 5 do
          Am.send_from am p ~dst:1 ~bytes:16 (fun ~time:_ -> out := i :: !out)
        done);
  Alcotest.(check (list int)) "fifo" [ 1; 2; 3; 4; 5 ] (List.rev !out)

let am_handlers_can_chain () =
  (* a handler forwarding to a third node works and accumulates latency *)
  let m = Machine.create ~nprocs:3 () in
  let am = Am.create m Cost_model.cm5_ace in
  let t_final = ref 0. and t_first = ref 0. in
  Machine.run m (fun p ->
      if p.Machine.id = 0 then
        Am.send_from am p ~dst:1 ~bytes:16 (fun ~time ->
            t_first := time;
            Am.send am ~now:time ~src:1 ~dst:2 ~bytes:16 (fun ~time ->
                t_final := time)));
  check "forwarded later" true (!t_final > !t_first)

let () =
  Alcotest.run "net"
    [
      ( "cost_model",
        [
          QCheck_alcotest.to_alcotest transit_monotone;
          Alcotest.test_case "barrier growth" `Quick barrier_cost_grows;
          Alcotest.test_case "profiles differ" `Quick profiles_differ;
        ] );
      ( "am",
        [
          Alcotest.test_case "delivery time" `Quick am_delivery_time;
          Alcotest.test_case "rpc roundtrip" `Quick am_rpc_roundtrip;
          Alcotest.test_case "byte accounting" `Quick am_counts_bytes;
          Alcotest.test_case "same-size fifo" `Quick am_same_size_fifo;
          Alcotest.test_case "handler chaining" `Quick am_handlers_can_chain;
        ] );
    ]
