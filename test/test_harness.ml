(* The parallel experiment harness must not change results: simulated
   seconds and computed answers are bit-identical for any worker count and
   across repeated runs (Pool assembles results positionally and each cell
   is an isolated simulation). *)

module E = Ace_harness.Experiments
module Pool = Ace_harness.Pool

let scale = { E.nprocs = 4; factor = 1 }

(* Everything but [wall], which measures the host, not the simulation. *)
let sig_of rows =
  List.map
    (fun r ->
      (r.E.name, r.E.baseline, r.E.ace, r.E.base_result, r.E.ace_result))
    rows

let fig7a_deterministic () =
  let serial = sig_of (E.fig7a ~scale ~jobs:1 ()) in
  let parallel = sig_of (E.fig7a ~scale ~jobs:4 ()) in
  Alcotest.(check bool) "parallel rows = serial rows" true (serial = parallel);
  let repeat = sig_of (E.fig7a ~scale ~jobs:4 ()) in
  Alcotest.(check bool) "second parallel run identical" true (parallel = repeat)

let pool_positional () =
  let tasks = Array.init 50 (fun i () -> i * i) in
  let out = Pool.run_all ~jobs:4 tasks in
  Alcotest.(check (list int))
    "results in task order"
    (List.init 50 (fun i -> i * i))
    (Array.to_list out)

let pool_empty_and_serial () =
  Alcotest.(check (list int)) "no tasks" []
    (Array.to_list (Pool.run_all ~jobs:4 [||]));
  let out = Pool.run_all ~jobs:1 (Array.init 5 (fun i () -> i + 1)) in
  Alcotest.(check (list int)) "jobs=1" [ 1; 2; 3; 4; 5 ] (Array.to_list out)

let pool_propagates_exn () =
  let tasks =
    Array.init 8 (fun i () -> if i = 5 then failwith "cell 5 blew up" else i)
  in
  match Pool.run_all ~jobs:3 tasks with
  | _ -> Alcotest.fail "expected the cell's exception to propagate"
  | exception Failure m ->
      Alcotest.(check string) "original message" "cell 5 blew up" m

let pool_timed () =
  let v, wall = Pool.timed (fun () -> 42) () in
  Alcotest.(check int) "value" 42 v;
  Alcotest.(check bool) "wall non-negative" true (wall >= 0.)

let () =
  Alcotest.run "harness"
    [
      ( "pool",
        [
          Alcotest.test_case "positional results" `Quick pool_positional;
          Alcotest.test_case "empty and serial" `Quick pool_empty_and_serial;
          Alcotest.test_case "exception propagation" `Quick pool_propagates_exn;
          Alcotest.test_case "timed wrapper" `Quick pool_timed;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "fig7a serial = parallel = repeat" `Slow
            fig7a_deterministic;
        ] );
    ]
