(* The adaptive serving workload: the Zipf sampler and churn permutation
   (seeded determinism, frequency shape), and the kvserve app itself —
   every backend, every fixed candidate protocol, batching on and off,
   and the online-adaptation run must all compute the sequential
   reference's exact total (all stored values are integral, so equality
   is exact). The adaptive run must also actually switch protocols. *)

module Rng = Ace_engine.Det_rng
module Driver = Ace_harness.Driver
module Adapt = Ace_runtime.Adapt
module Stats = Ace_engine.Stats
module Kv = Ace_apps.Kvserve
module Core = Ace_apps.Kv_core

let nprocs = 4

(* ---- Zipf sampler ---- *)

let zipf_deterministic () =
  let z = Core.zipf_make ~n:1000 ~theta:0.99 in
  let draw () =
    let rng = Rng.create 7 in
    Array.init 200 (fun _ -> Core.zipf_sample z rng)
  in
  Alcotest.(check (array int)) "same seed, same ranks" (draw ()) (draw ());
  let rng = Rng.create 8 in
  let other = Array.init 200 (fun _ -> Core.zipf_sample z rng) in
  if draw () = other then Alcotest.fail "different seeds gave equal streams"

let zipf_rank1_frequency () =
  (* Empirical mass of rank 0 over many draws vs the CDF's exact mass. *)
  List.iter
    (fun theta ->
      let z = Core.zipf_make ~n:500 ~theta in
      let rng = Rng.create 42 in
      let trials = 20_000 in
      let hits = ref 0 in
      for _ = 1 to trials do
        if Core.zipf_sample z rng = 0 then incr hits
      done;
      let emp = float_of_int !hits /. float_of_int trials in
      let exact = Core.rank1_mass z in
      if abs_float (emp -. exact) > 0.015 then
        Alcotest.failf "theta=%.2f: empirical %.4f vs exact %.4f" theta emp
          exact)
    [ 0.5; 0.99; 1.2 ]

let zipf_rank1_tracks_theta () =
  (* Heavier exponent, heavier head. *)
  let mass theta = Core.rank1_mass (Core.zipf_make ~n:500 ~theta) in
  if not (mass 1.2 > mass 0.99 && mass 0.99 > mass 0.5) then
    Alcotest.fail "rank-1 mass not monotone in theta"

let zipf_bounds () =
  let z = Core.zipf_make ~n:17 ~theta:1.1 in
  let rng = Rng.create 3 in
  for _ = 1 to 5_000 do
    let r = Core.zipf_sample z rng in
    if r < 0 || r >= 17 then Alcotest.failf "rank %d out of range" r
  done

(* ---- Churn permutation ---- *)

let churn_deterministic_bijection () =
  let n = 257 in
  List.iter
    (fun era ->
      let image = Array.init n (fun r -> Core.churn_key ~n ~seed:42 ~era r) in
      let again = Array.init n (fun r -> Core.churn_key ~n ~seed:42 ~era r) in
      Alcotest.(check (array int))
        (Printf.sprintf "era %d deterministic" era)
        image again;
      let seen = Array.make n false in
      Array.iter (fun k -> seen.(k) <- true) image;
      if Array.exists not seen then
        Alcotest.failf "era %d: churn map is not a permutation" era)
    [ 0; 1; 2; 7 ]

let churn_rotates () =
  let n = 256 in
  let image era = Array.init n (fun r -> Core.churn_key ~n ~seed:42 ~era r) in
  if image 0 = image 1 then
    Alcotest.fail "consecutive eras map ranks identically"

(* ---- The serving app vs its reference ---- *)

let cfg =
  { Core.default with Core.n_keys = 48; ops_per_epoch = 12; epochs = 8 }

let reference = lazy (Core.reference cfg ~nprocs)

let check_run name (r : Driver.outcome) =
  let want = Lazy.force reference in
  if r.Driver.result <> want then
    Alcotest.failf "%s: %.12g <> reference %.12g" name r.Driver.result want

let kv_crl () = check_run "crl" (Driver.run_crl ~nprocs (module Kv) cfg)
let kv_ace_sc () = check_run "ace-sc" (Driver.run_ace ~nprocs (module Kv) cfg)

let kv_fixed_protocols () =
  List.iter
    (fun proto ->
      let c = { cfg with Core.protocol = Some proto } in
      check_run proto (Driver.run_ace ~nprocs (module Kv) c);
      check_run (proto ^ "+batch")
        (Driver.run_ace ~batch:true ~nprocs (module Kv) c))
    [ "SC"; "DYN_UPDATE"; "MIGRATORY" ]

let kv_adaptive () =
  let switches = ref 0. in
  let stats st = switches := Stats.get st "ace.adapt.switches" in
  let r =
    Driver.run_ace ~adapt:Adapt.default ~stats ~nprocs (module Kv) cfg
  in
  check_run "adaptive" r;
  if !switches <= 0. then
    Alcotest.fail "adaptation never switched a protocol"

let kv_adaptive_batch () =
  check_run "adaptive+batch"
    (Driver.run_ace ~adapt:Adapt.default ~batch:true ~nprocs (module Kv) cfg)

let kv_adaptive_deterministic () =
  let go () =
    (Driver.run_ace ~adapt:Adapt.default ~nprocs (module Kv) cfg).Driver.seconds
  in
  Alcotest.(check (float 0.)) "same simulated seconds" (go ()) (go ())

let () =
  Alcotest.run "kvserve"
    [
      ( "zipf",
        [
          Alcotest.test_case "seeded determinism" `Quick zipf_deterministic;
          Alcotest.test_case "rank-1 frequency" `Quick zipf_rank1_frequency;
          Alcotest.test_case "rank-1 tracks theta" `Quick zipf_rank1_tracks_theta;
          Alcotest.test_case "sample bounds" `Quick zipf_bounds;
        ] );
      ( "churn",
        [
          Alcotest.test_case "deterministic bijection" `Quick
            churn_deterministic_bijection;
          Alcotest.test_case "rotates across eras" `Quick churn_rotates;
        ] );
      ( "serving",
        [
          Alcotest.test_case "crl" `Quick kv_crl;
          Alcotest.test_case "ace sc" `Quick kv_ace_sc;
          Alcotest.test_case "fixed protocols (+batch)" `Quick
            kv_fixed_protocols;
          Alcotest.test_case "adaptive switches and is exact" `Quick
            kv_adaptive;
          Alcotest.test_case "adaptive under batching" `Quick kv_adaptive_batch;
          Alcotest.test_case "adaptive is deterministic" `Quick
            kv_adaptive_deterministic;
        ] );
    ]
