(* The protocol conformance kit: coherence-oracle semantics on hand-built
   observation logs, the deterministic first-racy-pair report of the race
   checker, differential fuzzing (clean on the shipped registry, catches a
   deliberately broken protocol with a replayable shrunk counterexample),
   and schedule-independence of the five-benchmark grid under random
   event-queue tie-breaks. *)

module Oracle = Ace_check.Oracle
module Schedule = Ace_check.Schedule
module Prog = Ace_check.Prog
module Runner = Ace_check.Runner
module Repro = Ace_check.Repro
module Event_queue = Ace_engine.Event_queue
module Faults = Ace_net.Faults
module Runtime = Ace_runtime.Runtime
module Ops = Ace_runtime.Ops
module E = Ace_harness.Experiments
module Driver = Ace_harness.Driver

let check = Alcotest.(check bool)
let check_int = Alcotest.(check int)

(* ---------- oracle semantics on hand-built logs ---------- *)

let wr o ~node ~rid ~epoch ?(lseq = -1) v =
  Oracle.add o ~node ~rid ~epoch ~kind:Oracle.Write ~lseq ~value:v

let rd o ~node ~rid ~epoch ?(lseq = -1) v =
  Oracle.add o ~node ~rid ~epoch ~kind:Oracle.Read ~lseq ~value:v

let oracle_accepts_legal_log () =
  let o = Oracle.create ~nprocs:2 () in
  wr o ~node:0 ~rid:7 ~epoch:0 5.;
  rd o ~node:1 ~rid:7 ~epoch:1 5.;
  rd o ~node:0 ~rid:7 ~epoch:2 5.;
  check "no violations" true (Oracle.check o = None)

let oracle_flags_stale_read_after_barrier () =
  let o = Oracle.create ~nprocs:2 () in
  wr o ~node:0 ~rid:7 ~epoch:0 5.;
  rd o ~node:1 ~rid:7 ~epoch:1 0. (* stale: initial contents *);
  match Oracle.check o with
  | None -> Alcotest.fail "stale read not flagged"
  | Some v ->
      check "not a race" false v.Oracle.vrace;
      check_int "offending node" 1 v.Oracle.vobs.Oracle.onode;
      check_int "offending region" 7 v.Oracle.vrid;
      check "wanted the written value" true (v.Oracle.vwant = 5.);
      check "names the missed write" true
        (match v.Oracle.vprev with
        | Some w -> w.Oracle.onode = 0 && w.Oracle.ovalue = 5.
        | None -> false)

let oracle_orders_lock_chain () =
  let o = Oracle.create ~nprocs:2 () in
  (* two locked read-modify-write sections in the same epoch; chain order
     is the acquisition order, not node order *)
  rd o ~node:1 ~rid:3 ~epoch:0 ~lseq:0 0.;
  wr o ~node:1 ~rid:3 ~epoch:0 ~lseq:0 4.;
  rd o ~node:0 ~rid:3 ~epoch:0 ~lseq:1 4.;
  wr o ~node:0 ~rid:3 ~epoch:0 ~lseq:1 9.;
  rd o ~node:1 ~rid:3 ~epoch:1 9.;
  check "locked chain is legal" true (Oracle.check o = None);
  (* same shape, but the second holder reads a value the first holder's
     write should have replaced: lost update *)
  let o = Oracle.create ~nprocs:2 () in
  rd o ~node:1 ~rid:3 ~epoch:0 ~lseq:0 0.;
  wr o ~node:1 ~rid:3 ~epoch:0 ~lseq:0 4.;
  rd o ~node:0 ~rid:3 ~epoch:0 ~lseq:1 0. (* stale: missed lock #0's write *);
  match Oracle.check o with
  | None -> Alcotest.fail "lost locked update not flagged"
  | Some v ->
      check "not a race" false v.Oracle.vrace;
      check "wants lock #0's value" true (v.Oracle.vwant = 4.)

let oracle_checks_batched_flush_ordering () =
  (* a write-combining protocol may coalesce an epoch's writes into one
     flush at the barrier, but the flushed value must be the last one in
     program order *)
  let o = Oracle.create ~nprocs:2 () in
  wr o ~node:0 ~rid:1 ~epoch:0 2.;
  wr o ~node:0 ~rid:1 ~epoch:0 9.;
  rd o ~node:1 ~rid:1 ~epoch:1 9.;
  check "last write wins after flush" true (Oracle.check o = None);
  let o = Oracle.create ~nprocs:2 () in
  wr o ~node:0 ~rid:1 ~epoch:0 2.;
  wr o ~node:0 ~rid:1 ~epoch:0 9.;
  rd o ~node:1 ~rid:1 ~epoch:1 2. (* saw the overwritten intermediate *);
  match Oracle.check o with
  | None -> Alcotest.fail "intermediate flush value not flagged"
  | Some v -> check "wants the final value" true (v.Oracle.vwant = 9.)

let oracle_flags_unsynchronized_race () =
  let o = Oracle.create ~nprocs:2 () in
  wr o ~node:0 ~rid:2 ~epoch:0 3.;
  rd o ~node:1 ~rid:2 ~epoch:0 0.;
  match Oracle.check o with
  | None -> Alcotest.fail "race not flagged"
  | Some v ->
      check "flagged as race" true v.Oracle.vrace;
      check "pairs the write" true
        (match v.Oracle.vprev with
        | Some a -> a.Oracle.okind = Oracle.Write && a.Oracle.onode = 0
        | None -> false)

let oracle_live_tracking () =
  (* the tracking entry points (record/lock/barrier) assign epochs and
     lock numbers the same way the observer does *)
  let o = Oracle.create ~nprocs:2 () in
  Oracle.record_write o ~node:0 ~rid:0 ~value:5.;
  Oracle.barrier o ~node:0;
  Oracle.barrier o ~node:1;
  Oracle.lock o ~node:1 ~rid:0;
  Oracle.record_read o ~node:1 ~rid:0 ~value:5.;
  Oracle.unlock o ~node:1 ~rid:0;
  check "no violations" true (Oracle.check o = None);
  check_int "two observations" 2 (Oracle.observations o)

(* ---------- race checker: deterministic first pair ---------- *)

(* Three staggered accesses in one epoch: a locked write (node 0), then an
   unlocked read (node 1), then an unlocked write (node 2). The reported
   pair must be the locked write racing the unlocked read — the first
   conflict to materialize — run after run. *)
let race_report_first_pair () =
  let run () =
    let rt = Runtime.create ~nprocs:3 () in
    Ace_protocols.Proto_lib.register_all rt;
    ignore (Runtime.new_space rt "SC");
    Runtime.run rt (fun ctx ->
        let me = Ops.me ctx in
        if me = 0 then ignore (Ops.alloc ctx ~space:0 ~len:1);
        Ops.barrier ctx ~space:0;
        let h = Ops.map ctx (Ops.global_id ctx ~space:0 ~owner:0 ~seq:0) in
        Ops.change_protocol ctx ~space:0 "RACE_CHECK";
        (match me with
        | 0 ->
            Ops.lock ctx h;
            Ops.start_write ctx h;
            (Ops.data ctx h).(0) <- 1.;
            Ops.end_write ctx h;
            Ops.unlock ctx h
        | 1 ->
            Ops.work ctx 1_000_000.;
            Ops.start_read ctx h;
            ignore (Ops.data ctx h).(0);
            Ops.end_read ctx h
        | _ ->
            Ops.work ctx 2_000_000.;
            Ops.start_write ctx h;
            (Ops.data ctx h).(0) <- 2.;
            Ops.end_write ctx h);
        Ops.barrier ctx ~space:0);
    Ace_protocols.Proto_race_check.reports (Runtime.space rt 0)
  in
  let reports = run () in
  check_int "one report" 1 (List.length reports);
  let r = List.hd reports in
  let open Ace_protocols.Proto_race_check in
  check_int "first access: the locked write by node 0" 0 r.first.node;
  check "first is a write" true r.first.writer;
  check "first holds the lock" true r.first.locked;
  check_int "second access: the unlocked read by node 1" 1 r.second.node;
  check "second is a read" false r.second.writer;
  check "second is unlocked" false r.second.locked;
  (* determinism: an identical run reports the identical pair *)
  let again = List.hd (run ()) in
  check "repeat run reports the same pair" true
    (again.first = r.first && again.second = r.second)

(* ---------- differential fuzzer ---------- *)

let fault_specs = [ Faults.spec ~drop:0.03 ~dup:0.02 ~jitter:25. ~seed:11 () ]

let fuzz_registry_clean () =
  let report =
    Runner.fuzz ~seed:7 ~count:40 ~schedules:8 ~fault_specs
      ~batch_modes:[ false; true ] ()
  in
  check "no counterexample" true (report.Runner.counterexample = None);
  check_int "ran all programs" 40 report.Runner.programs

let fuzz_catches_broken_protocol () =
  let report =
    Runner.fuzz
      ~protocols:[ "SC"; Runner.broken_protocol.Ace_runtime.Protocol.name ]
      ~seed:3 ~count:200 ~schedules:8 ~fault_specs:[] ~batch_modes:[ false ]
      ()
  in
  match report.Runner.counterexample with
  | None -> Alcotest.fail "broken protocol escaped the fuzzer"
  | Some ((p, fl) as cex) ->
      check "blames the broken protocol" true
        (fl.Runner.cell.Runner.proto = "BROKEN_DYN_UPDATE");
      check "counterexample is shrunk" true (List.length p.Prog.epochs <= 2);
      (* the shrunk counterexample replays from its .repro round trip *)
      let r = Runner.to_repro cex in
      let path = Filename.temp_file "acecheck" ".repro" in
      Repro.write path r;
      let r2 = Repro.read path in
      Sys.remove path;
      check "repro round-trips" true
        (Prog.to_string r2.Repro.prog = Prog.to_string p
        && r2.Repro.proto = r.Repro.proto
        && r2.Repro.policy = r.Repro.policy);
      check "replay still fails" true (Runner.replay r2 <> None)

let prog_text_roundtrip () =
  let st = Random.State.make [| 99 |] in
  for _ = 1 to 50 do
    let p = Prog.generate () st in
    let q = Prog.of_string (Prog.to_string p) in
    check "program text round-trips" true (Prog.to_string q = Prog.to_string p)
  done

let schedule_policies_roundtrip () =
  for i = 0 to 40 do
    let pol = Schedule.of_index i in
    check "policy text round-trips" true
      (Event_queue.policy_of_string (Event_queue.policy_to_string pol) = pol)
  done;
  check "index 0 is FIFO" true (Schedule.of_index 0 = Event_queue.Fifo)

(* ---------- seed matrix: benchmark results are schedule-independent ---- *)

let scale = { E.nprocs = 4; factor = 1 }

let policies =
  [
    Event_queue.Fifo;
    Event_queue.Random 11;
    Event_queue.Random 22;
    Event_queue.Random 33;
  ]

let results_under policy =
  [
    ("em3d",
     (Driver.run_ace ~policy ~nprocs:scale.E.nprocs
        (module Ace_apps.Em3d) (E.em3d_cfg scale 2)).Driver.result);
    ("bh",
     (Driver.run_ace ~policy ~nprocs:scale.E.nprocs
        (module Ace_apps.Barnes_hut) (E.bh_cfg scale 2)).Driver.result);
    ("water",
     (Driver.run_ace ~policy ~nprocs:scale.E.nprocs
        (module Ace_apps.Water) (E.water_cfg scale 2)).Driver.result);
    ("bsc",
     (Driver.run_ace ~policy ~nprocs:scale.E.nprocs
        (module Ace_apps.Cholesky) (E.bsc_cfg scale)).Driver.result);
    ("tsp",
     (Driver.run_ace ~policy ~nprocs:scale.E.nprocs
        (module Ace_apps.Tsp) (E.tsp_cfg scale)).Driver.result);
  ]

let benchmarks_schedule_independent () =
  let reference = results_under Event_queue.Fifo in
  List.iter
    (fun policy ->
      let got = results_under policy in
      List.iter2
        (fun (name, want) (_, have) ->
          Alcotest.(check string)
            (Printf.sprintf "%s checksum under %s" name
               (Event_queue.policy_to_string policy))
            (Printf.sprintf "%.17g" want)
            (Printf.sprintf "%.17g" have))
        reference got)
    (List.tl policies)

let () =
  Alcotest.run "conformance"
    [
      ( "oracle",
        [
          Alcotest.test_case "legal log" `Quick oracle_accepts_legal_log;
          Alcotest.test_case "stale read after barrier" `Quick
            oracle_flags_stale_read_after_barrier;
          Alcotest.test_case "lock-protected visibility" `Quick
            oracle_orders_lock_chain;
          Alcotest.test_case "batched-flush ordering" `Quick
            oracle_checks_batched_flush_ordering;
          Alcotest.test_case "unsynchronized race" `Quick
            oracle_flags_unsynchronized_race;
          Alcotest.test_case "live tracking" `Quick oracle_live_tracking;
        ] );
      ( "race_check",
        [
          Alcotest.test_case "deterministic first racy pair" `Quick
            race_report_first_pair;
        ] );
      ( "fuzz",
        [
          Alcotest.test_case "registry is clean" `Quick fuzz_registry_clean;
          Alcotest.test_case "broken protocol is caught" `Quick
            fuzz_catches_broken_protocol;
          Alcotest.test_case "program text round-trips" `Quick
            prog_text_roundtrip;
          Alcotest.test_case "schedule policies round-trip" `Quick
            schedule_policies_roundtrip;
        ] );
      ( "schedules",
        [
          Alcotest.test_case "five-benchmark seed matrix" `Slow
            benchmarks_schedule_independent;
        ] );
    ]
